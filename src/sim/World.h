//===- sim/World.h - Synchronous CA multi-agent engine ----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cellular-automaton multi-agent system of Sect. 3.
///
/// One iteration ("step") at time t proceeds as:
///
///   1. Communication: every agent ORs into its communication vector the
///      vectors of all agents on its nearest-neighbour cells (4 in S, 6 in
///      T), synchronously from the pre-step values. (Transitive closure is
///      NOT applied within a step: information travels one hop per step.)
///   2. Success check: if every agent now holds the all-ones vector the
///      task is solved and t_comm = t. The exchange at t = 0 — "the
///      communication after the initial placement" — is therefore not
///      counted, which makes the fully packed field cost exactly
///      diameter - 1 steps, matching Table 1's N_agents = 256 column.
///   3. Action: every agent evaluates its FSM and applies (setcolor, turn,
///      move) simultaneously. The colour is written to the cell the agent
///      occupies *before* moving.
///
/// Move arbitration (Sect. 3, "Conflicts"): an agent *requests* its front
/// cell when its FSM would output move = 1 under the hypothesis blocked=0.
/// The move condition `canmove` is true iff the front cell holds no agent
/// (even one that is about to leave) and no *other requester* with a lower
/// ID targets the same cell. The FSM input bit `blocked` is NOT canmove,
/// and the action actually taken is the table entry for the true input.
/// Because a mover's target is empty and uncontested pre-step, no two
/// agents ever occupy one cell.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_WORLD_H
#define CA2A_SIM_WORLD_H

#include "agent/Genome.h"
#include "grid/Topology.h"
#include "sim/Fault.h"
#include "support/BitVector.h"
#include "support/Rng.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace ca2a {

/// Where an agent starts: cell plus moving direction.
struct Placement {
  Coord Pos;
  uint8_t Direction = 0;
};

/// Initial control-state assignment for the agents' FSMs.
///
/// The paper's reliability device (Sect. 4): uniform agents all starting in
/// the same state can follow "parallel" trajectories that never intersect;
/// starting even/odd IDs in states 0/1 breaks the symmetry.
struct StartStates {
  enum class Mode : uint8_t {
    IdParity, ///< state = ID mod 2 (the paper's choice).
    Uniform,  ///< every agent starts in UniformValue.
  };

  Mode M = Mode::IdParity;
  uint8_t UniformValue = 0;

  static StartStates idParity() { return StartStates{}; }
  static StartStates uniform(uint8_t Value) {
    // The genome's state count bounds the value; World::reset asserts
    // against the actual dimensions (which may exceed the paper's 4).
    assert(Value < 9 && "start state beyond any supported dimension");
    return StartStates{Mode::Uniform, Value};
  }

  uint8_t stateFor(int AgentId) const {
    return M == Mode::IdParity ? static_cast<uint8_t>(AgentId % 2)
                               : UniformValue;
  }
};

/// How FSMs are assigned to agents and steps when two genomes are given.
///
/// TimeShuffle reproduces the "time-shuffling (alternating two FSMs in
/// time)" device of the authors' earlier S-grid work; SpeciesParity is the
/// paper's reliability option 3 ("use different species (FSMs) of
/// agents"). Both degenerate to Single when only one genome is supplied.
enum class GenomePolicy : uint8_t {
  Single,        ///< One FSM for every agent at every step.
  TimeShuffle,   ///< FSM A on even steps, FSM B on odd steps.
  SpeciesParity, ///< Even-ID agents run FSM A, odd-ID agents FSM B.
};

/// Which agents participate in a move conflict — the one point where the
/// paper's prose is genuinely ambiguous (see DESIGN.md §5). Both readings
/// are implemented so the reproduction can show its conclusions do not
/// hinge on the choice (bench_semantics).
enum class ArbitrationMode : uint8_t {
  /// An agent claims its front cell only when its FSM would move under
  /// the blocked=0 hypothesis ("move requests" seen by the cell's
  /// arbitration logic). The default, used for all headline numbers.
  RequestPriority,
  /// Every agent claims the cell it faces, moving or not: a lower-ID
  /// gazer blocks a higher-ID requester.
  GazePriority,
};

/// Simulation switches beyond grid/genome/placements.
struct SimOptions {
  int MaxSteps = 200;            ///< t_max cutoff (paper: 200 for 16x16).
  StartStates Start;             ///< Initial control states.
  bool ColorsEnabled = true;     ///< false: setcolor is ignored (ablation A1).
  ArbitrationMode Arbitration = ArbitrationMode::RequestPriority;
  /// false (paper): cyclic wrap-around field. true: the field has borders —
  /// moves and exchanges across the seam are impossible (the "easier"
  /// environments of the authors' earlier studies; future-work list).
  bool Bordered = false;
  /// Cells no agent may enter (reliability option 5 / future work).
  /// Obstacles never block the colour layer or communication — they only
  /// exclude occupancy. Must not collide with agent placements.
  std::vector<Coord> Obstacles;
  /// Fault injection (see sim/Fault.h). With all rates zero (the default)
  /// the engine is bit-identical to the fault-free engine and consumes no
  /// random draws. Faults are injected at the start of every iteration,
  /// including the uncounted exchange at t = 0.
  FaultModel Faults;
};

/// Outcome of one simulation run.
///
/// Under faults "success" is survivor-aware: the task is solved when every
/// *surviving* agent holds the bits of all survivors. Without faults that
/// coincides with the paper's all-ones condition.
struct SimResult {
  bool Success = false;   ///< All surviving agents informed within MaxSteps.
  int TComm = -1;         ///< Communication time (valid when Success).
  int InformedAgents = 0; ///< Informed surviving agents at termination.
  int NumAgents = 0;

  // Degradation fields (meaningful under fault injection; in a fault-free
  // run SurvivingAgents == NumAgents and InformedFraction is the plain
  // informed share).
  int SurvivingAgents = 0;      ///< Agents still alive at termination.
  double InformedFraction = 0.0; ///< Informed / surviving (0 if extinct).
  FaultStats Faults;            ///< Fault events that fired during the run.

  /// Exact equality, including the InformedFraction double — both engines
  /// compute it from the same integer operands, so bit-identical runs
  /// compare equal (the differential suite relies on this).
  bool operator==(const SimResult &Other) const {
    return Success == Other.Success && TComm == Other.TComm &&
           InformedAgents == Other.InformedAgents &&
           NumAgents == Other.NumAgents &&
           SurvivingAgents == Other.SurvivingAgents &&
           InformedFraction == Other.InformedFraction &&
           Faults == Other.Faults;
  }
  bool operator!=(const SimResult &Other) const { return !(*this == Other); }
};

/// Full runtime state of one agent.
struct AgentState {
  int32_t Cell = 0;         ///< Flat cell index (stale once dead).
  uint8_t Direction = 0;    ///< Ring index into the topology's directions.
  uint8_t ControlState = 0; ///< FSM state.
  bool Informed = false;    ///< Comm vector covers every survivor.
  bool Alive = true;        ///< False once a death fault fired.
  BitVector Comm;           ///< k-bit communication vector.
};

/// The CA world: torus + colour layer + agents + embedded FSM.
///
/// The Torus is borrowed (not owned) and must outlive the World — this
/// lets the GA evaluate thousands of configurations without rebuilding
/// the neighbour table. Genomes are small and are copied in by reset(),
/// so temporaries are safe to pass.
class World {
public:
  explicit World(const Torus &T);

  /// (Re)initialises: places the agents of \p Placements on an all-colour-0
  /// field, gives agent i the unit communication vector e_i, control state
  /// per \p Options.Start, and resets time to 0. Placements must be on
  /// distinct non-obstacle cells with valid directions (asserted; CLI-facing
  /// callers should run validatePlacements first — asserts vanish in
  /// release builds).
  void reset(const Genome &G, const std::vector<Placement> &Placements,
             const SimOptions &Options);

  /// Checks the user-reachable reset preconditions — duplicate placement,
  /// placement on an obstacle, direction out of range, negative
  /// MaxSteps — and reports the
  /// first violation as a recoverable error. Unlike the asserts inside
  /// reset(), this path survives release builds; CLI frontends should call
  /// it on any user-supplied configuration before reset().
  [[nodiscard]] static Expected<bool>
  validatePlacements(const Torus &T, const std::vector<Placement> &Placements,
                     const SimOptions &Options);

  /// Two-genome variant: \p Policy selects how \p A and \p B are assigned
  /// (time-shuffling or species mixing). Policy Single uses only \p A.
  void reset(const Genome &A, const Genome &B, GenomePolicy Policy,
             const std::vector<Placement> &Placements,
             const SimOptions &Options);

  /// Step status returned by step().
  enum class Status { Solved, Running };

  /// Executes one iteration (exchange, success check, actions). Returns
  /// Solved when the success check fires — in that case the actions of the
  /// final iteration are not executed and time() is t_comm. While Running,
  /// time() advances by one per call.
  Status step();

  /// step() with an observer called right after the exchange/success check
  /// of the iteration (i.e. before the action phase).
  Status
  stepWithObserver(const std::function<void(const World &, int)> &OnStep);

  /// Runs until solved or Options.MaxSteps iterations have executed.
  SimResult run();

  /// Like run() but invokes \p OnStep(*this, t) after the exchange/check of
  /// every iteration, including the final (solved) one.
  SimResult run(const std::function<void(const World &, int)> &OnStep);

  // Introspection (used by traces, rendering, and the tests).

  const Torus &torus() const { return T; }
  int time() const { return Time; }
  int numAgents() const { return static_cast<int>(Agents.size()); }
  const AgentState &agent(int Id) const {
    assert(Id >= 0 && Id < numAgents() && "agent id out of range");
    return Agents[static_cast<size_t>(Id)];
  }
  /// Agent id on \p CellIndex, or -1.
  int agentAt(int CellIndex) const {
    assert(CellIndex >= 0 && CellIndex < T.numCells() && "bad cell index");
    return Occupancy[static_cast<size_t>(CellIndex)];
  }
  /// True when the cell's colour is nonzero.
  bool colorAt(int CellIndex) const { return colorValueAt(CellIndex) != 0; }

  /// The cell's colour value (0 or 1 at paper dimensions; up to
  /// dims().Colors - 1 in the more-colours extension).
  int colorValueAt(int CellIndex) const {
    assert(CellIndex >= 0 && CellIndex < T.numCells() && "bad cell index");
    return Colors[static_cast<size_t>(CellIndex)];
  }
  int informedCount() const { return NumInformed; }
  /// Agents still alive (== numAgents() unless death faults fired).
  int survivorCount() const { return NumAlive; }
  /// Fault events that fired since reset().
  const FaultStats &faultStats() const { return FaultCounters; }

  /// Number of times any agent has *entered* \p CellIndex (initial
  /// placements count as one visit). Feeds the Fig. 6/7 "visited" panels.
  int visitCount(int CellIndex) const {
    assert(CellIndex >= 0 && CellIndex < T.numCells() && "bad cell index");
    return VisitCounts[static_cast<size_t>(CellIndex)];
  }

  /// True when \p CellIndex is an obstacle.
  bool obstacleAt(int CellIndex) const {
    assert(CellIndex >= 0 && CellIndex < T.numCells() && "bad cell index");
    return ObstacleMask[static_cast<size_t>(CellIndex)] != 0;
  }

private:
  void exchangeCommunication();
  void applyActions();
  void injectFaults();

  /// FSM controlling \p AgentId at the current time under the policy.
  const Genome &activeGenome(int AgentId) const {
    switch (Policy) {
    case GenomePolicy::Single:
      return GenomeA;
    case GenomePolicy::TimeShuffle:
      return (Time % 2) ? GenomeB : GenomeA;
    case GenomePolicy::SpeciesParity:
      return (AgentId % 2) ? GenomeB : GenomeA;
    }
    assert(false && "unhandled genome policy");
    return GenomeA;
  }

  const Torus &T;
  Genome GenomeA;
  Genome GenomeB;
  GenomePolicy Policy = GenomePolicy::Single;
  bool WasReset = false;
  SimOptions Options;
  int Time = 0;
  int NumInformed = 0;

  // Fault state. FaultRng is the dedicated stream of SimOptions::Faults;
  // FaultsActive caches Faults.any() so the fault-free hot path pays one
  // predictable branch per step.
  Rng FaultRng{0};
  bool FaultsActive = false;
  int NumAlive = 0;
  BitVector SurvivorMask;       ///< Bit per agent, set while alive.
  std::vector<uint8_t> Stalled; ///< Per-step stall flags (scratch).
  FaultStats FaultCounters;

  std::vector<AgentState> Agents;
  std::vector<uint8_t> Colors;       ///< One colour bit per cell.
  std::vector<int16_t> Occupancy;    ///< Agent id per cell, -1 when empty.
  std::vector<int32_t> VisitCounts;  ///< Entries per cell.
  std::vector<uint8_t> ObstacleMask; ///< 1 where a cell is an obstacle.

  // Per-step scratch, kept to avoid reallocation.
  std::vector<BitVector> CommNext;
  std::vector<int32_t> ClaimMinId;  ///< Min requester id per cell, -1 clean.
  std::vector<int32_t> TouchedCells;
  struct Decision {
    int32_t FrontCell;
    uint8_t Input;
    bool CanMove;
    bool Skip; ///< Agent is dead or stalled: no request, no action.
  };
  std::vector<Decision> Decisions;
};

} // namespace ca2a

#endif // CA2A_SIM_WORLD_H
