//===- sim/simd/Kernel.cpp - Backend-to-kernel dispatch -------------------===//

#include "sim/simd/Kernel.h"

#include <cassert>

namespace ca2a {
namespace simd {

const LaneKernel &laneKernel(SimdBackend Resolved) {
  switch (Resolved) {
  case SimdBackend::Scalar:
    return scalarLaneKernel();
  case SimdBackend::Sliced64:
    return sliced64LaneKernel();
  case SimdBackend::AVX2:
    assert(simdBackendAvailable(SimdBackend::AVX2) &&
           "AVX2 kernel dispatched on a host without AVX2");
    return avx2LaneKernel();
  case SimdBackend::RMaj64:
    return rmaj64LaneKernel();
  case SimdBackend::Auto:
    break;
  }
  assert(false && "laneKernel() requires a resolved backend");
  return sliced64LaneKernel();
}

} // namespace simd
} // namespace ca2a
