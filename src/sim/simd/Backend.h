//===- sim/simd/Backend.h - SIMD backend selection & dispatch ---*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime selection of the lane-parallel kernel that executes the batch
/// engine's fast-path replica stepping (see sim/simd/Kernel.h).
///
/// Three concrete backends exist, all bit-identical to the reference
/// World (the per-backend differential matrix in tests/sim enforces it):
///
///   * scalar   — the per-agent lockstep loop, no special instructions.
///   * sliced64 — portable restructured kernel: the per-agent boolean
///                verdicts of a step (move requests, front-cell occupancy,
///                informedness) are packed into 64-bit words across the
///                replica's agents (k <= 64 on the fast path), the success
///                check is one popcount, and the claim sweep is driven by
///                those packed words. Plain C++, runs anywhere.
///   * avx2     — the sliced64 structure with the gather/observe stage
///                vectorised 8 agents per instruction (AVX2 gathers and
///                mask blends). Compiled into its own translation unit
///                with -mavx2 and dispatched only when cpuid reports AVX2,
///                so the fat binary runs on any x86-64 host.
///
/// Selection order: the CA2A_FORCE_BACKEND environment variable (CI's
/// forcing knob) beats the requested backend, which beats Auto; Auto picks
/// the fastest backend the CPU supports. A forced or requested backend
/// that is not available on the host falls back to Auto resolution with a
/// one-line stderr warning — never an error, since every backend computes
/// bit-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_SIMD_BACKEND_H
#define CA2A_SIM_SIMD_BACKEND_H

#include <cstdint>
#include <string>
#include <vector>

namespace ca2a {

/// Which lane kernel executes fast-path replica stepping.
enum class SimdBackend : uint8_t {
  Auto,     ///< Resolve at run time: fastest available backend.
  Scalar,   ///< Per-agent scalar lockstep (always available).
  Sliced64, ///< Portable 64-bit verdict-sliced kernel (always available).
  AVX2,     ///< 8-agent AVX2 gather/blend kernel (x86-64 with AVX2 only).
};

/// "auto" / "scalar" / "sliced64" / "avx2".
const char *simdBackendName(SimdBackend B);

/// Parses "auto", "scalar", "sliced64" (or "sliced"), "avx2"
/// (case-insensitive).
bool parseSimdBackend(const std::string &Text, SimdBackend &B);

/// True when \p B can execute on this process: the binary carries the
/// kernel and the CPU reports the required features. Auto, Scalar and
/// Sliced64 are always available.
bool simdBackendAvailable(SimdBackend B);

/// Every concrete (non-Auto) backend available on this host, in Auto's
/// preference order (fastest first). Never empty — Scalar and Sliced64
/// are unconditionally present. The differential test matrix iterates
/// this list.
std::vector<SimdBackend> availableSimdBackends();

/// Resolves \p Requested to the concrete backend a run will execute:
/// CA2A_FORCE_BACKEND (when set to a parseable, available backend) wins,
/// then an available \p Requested, then Auto's preference order. Reads
/// the environment on every call so tests can re-point the force variable
/// between runs.
SimdBackend resolveSimdBackend(SimdBackend Requested);

/// Name of the forcing environment variable ("CA2A_FORCE_BACKEND").
const char *simdBackendForceEnvVar();

/// One-line capability summary, e.g. "avx2 sliced64 scalar (cpu: avx2)" —
/// used by the CLI frontends' startup banner and the bench reports.
std::string simdBackendSummary();

} // namespace ca2a

#endif // CA2A_SIM_SIMD_BACKEND_H
