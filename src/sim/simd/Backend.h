//===- sim/simd/Backend.h - SIMD backend selection & dispatch ---*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime selection of the lane-parallel kernel that executes the batch
/// engine's fast-path replica stepping (see sim/simd/Kernel.h).
///
/// Four concrete backends exist, all bit-identical to the reference
/// World (the per-backend differential matrix in tests/sim enforces it):
///
///   * scalar   — the per-agent lockstep loop, no special instructions.
///   * sliced64 — portable restructured kernel: the per-agent boolean
///                verdicts of a step (move requests, front-cell occupancy,
///                informedness) are packed into 64-bit words across the
///                replica's agents (k <= 64 on the fast path), the success
///                check is one popcount, and the claim sweep is driven by
///                those packed words. Plain C++, runs anywhere.
///   * avx2     — the sliced64 structure with the gather/observe stage
///                vectorised 8 agents per instruction (AVX2 gathers and
///                mask blends). Compiled into its own translation unit
///                with -mavx2 and dispatched only when cpuid reports AVX2,
///                so the fat binary runs on any x86-64 host.
///   * rmaj64   — replica-major slab stepping (sim/simd/ReplicaSlab.h):
///                the batch engine groups up to 64 replicas that share a
///                (genome, field) configuration into a slab and steps one
///                shared master trajectory with the sliced64 kernel; each
///                lane's fault-RNG stream is drawn per-replica serially in
///                reference draw order, and a lane retires to the general
///                path the moment a fault fires (replaying that step from
///                an RNG snapshot). Gather-free clone stepping: the win is
///                proportional to slab occupancy, so it is opt-in rather
///                than part of Auto's preference order — replica-averaged
///                workloads (thousands of runs of one configuration, or
///                fault sweeps that share a long fault-free prefix) are
///                where it pays; GA generations deduplicate (genome,
///                field) pairs first and see sliced64-parity occupancy-1
///                slabs.
///
/// Selection order: the CA2A_FORCE_BACKEND environment variable (CI's
/// forcing knob) beats the requested backend, which beats Auto; Auto picks
/// the fastest backend the CPU supports. A forced or requested backend
/// that is not available on the host falls back to Auto resolution with a
/// one-line stderr warning — never an error, since every backend computes
/// bit-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_SIMD_BACKEND_H
#define CA2A_SIM_SIMD_BACKEND_H

#include <cstdint>
#include <string>
#include <vector>

namespace ca2a {

/// Which lane kernel executes fast-path replica stepping.
enum class SimdBackend : uint8_t {
  Auto,     ///< Resolve at run time: fastest available backend.
  Scalar,   ///< Per-agent scalar lockstep (always available).
  Sliced64, ///< Portable 64-bit verdict-sliced kernel (always available).
  AVX2,     ///< 8-agent AVX2 gather/blend kernel (x86-64 with AVX2 only).
  RMaj64,   ///< Replica-major 64-lane slab stepping (always available).
};

/// "auto" / "scalar" / "sliced64" / "avx2" / "rmaj64".
const char *simdBackendName(SimdBackend B);

/// Parses "auto", "scalar", "sliced64" (or "sliced"), "avx2", "rmaj64"
/// (or "rmaj") — case-insensitive.
bool parseSimdBackend(const std::string &Text, SimdBackend &B);

/// True when \p B can execute on this process: the binary carries the
/// kernel and the CPU reports the required features. Auto, Scalar and
/// Sliced64 are always available.
bool simdBackendAvailable(SimdBackend B);

/// Every concrete (non-Auto) backend available on this host. The front
/// of the list is Auto's resolution (fastest on a generic workload);
/// rmaj64 sits after sliced64 because its advantage is workload-shaped
/// (slab occupancy), not universal. Never empty — Scalar, Sliced64 and
/// RMaj64 are unconditionally present. The differential test matrix
/// iterates this list, so every entry is exercised by the fuzz,
/// word-boundary, determinism and golden-trace suites.
std::vector<SimdBackend> availableSimdBackends();

/// Resolves \p Requested to the concrete backend a run will execute:
/// CA2A_FORCE_BACKEND (when set to a parseable, available backend) wins,
/// then an available \p Requested, then Auto's preference order. Reads
/// the environment on every call so tests can re-point the force variable
/// between runs.
SimdBackend resolveSimdBackend(SimdBackend Requested);

/// Name of the forcing environment variable ("CA2A_FORCE_BACKEND").
const char *simdBackendForceEnvVar();

/// One-line capability summary, e.g. "avx2 sliced64 scalar (cpu: avx2)" —
/// used by the CLI frontends' startup banner and the bench reports.
std::string simdBackendSummary();

} // namespace ca2a

#endif // CA2A_SIM_SIMD_BACKEND_H
