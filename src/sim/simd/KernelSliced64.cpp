//===- sim/simd/KernelSliced64.cpp - Portable verdict-sliced kernel -------===//
//
// The portable lane-parallel backend: pass 1 is split into the two-stage
// form of FastPath.h. Stage A sweeps the agents doing only the independent
// gather/observe work — neighbour-OR exchange, table row resolution — and
// bit-slices the step's boolean verdicts (move request, front occupancy,
// informedness) into 64-bit words indexed by agent id (the fast path
// guarantees k <= 64). Stage B replays the claim/arbitration sweep in id
// order off those packed words, and the success check collapses to one
// popcount. Plain C++ throughout: this backend runs on any host and is the
// structural template the AVX2 kernel vectorises.
//
//===----------------------------------------------------------------------===//

#include "sim/simd/FastPath.h"
#include "sim/simd/Kernel.h"

namespace ca2a {
namespace simd {
namespace {

/// Stage A over every agent, hoisted into local restrict pointers (the
/// same discipline as pass1Sweep — GCC will not keep the pointer set in
/// registers across stores otherwise). Per agent this computes exactly
/// what stageAOne computes, in the same order.
template <int DegT> void stageASweep(FastCtx &C, StageAWords &W) {
  const int16_t *__restrict__ NB = C.NB;
  uint64_t *__restrict__ CommW = C.CommW;
  const uint64_t *__restrict__ CellW = C.CellW;
  const uint64_t *__restrict__ AgentP = C.AgentP;
  const uint8_t *__restrict__ ColorsP = C.ColorsP;
  uint64_t *__restrict__ SelP = C.SelP;
  uint64_t *__restrict__ ScratchP = C.ScratchP;
  const PackedEntry *TabEven = C.TabEven, *TabOdd = C.TabOdd;
  const uint64_t Full = C.Full;
  const int St = C.St, NC = C.NC, K = C.K;
  const uint32_t Gaze = C.Gaze ? MoveBit : 0;
  uint64_t Requests = 0, FrontOcc = 0, Informed = 0;

  for (int Id = 0; Id != K; ++Id) {
    const uint64_t A = AgentP[Id];
    const int Cell = agentCell(A);
    const int16_t *N = &NB[static_cast<size_t>(Cell) * DegT];
    uint64_t Row = CommW[Id];
    for (int D = 0; D != DegT; ++D)
      Row |= CellW[N[D]];
    CommW[Id] = Row;
    Informed |= static_cast<uint64_t>(Row == Full) << Id;

    const int Front = N[agentDir(A)];
    const size_t RowIdx =
        static_cast<size_t>(2 * (ColorsP[Cell] + NC * ColorsP[Front]) * St) +
        agentState(A);
    const PackedEntry *Tab = (Id & 1) ? TabOdd : TabEven;
    const PackedEntry EntFree = Tab[RowIdx];
    const PackedEntry EntBlocked = Tab[RowIdx + static_cast<size_t>(St)];
    Requests |= static_cast<uint64_t>(((EntFree | Gaze) & MoveBit) != 0)
                << Id;
    FrontOcc |= static_cast<uint64_t>(CellW[Front] != 0) << Id;
    ScratchP[Id] = EntFree | (static_cast<uint64_t>(EntBlocked) << 32);
    SelP[Id] = static_cast<uint64_t>(static_cast<uint32_t>(Front)) << 32;
  }
  W.Requests = Requests;
  W.FrontOcc = FrontOcc;
  W.Informed = Informed;
}

/// One iteration's phase A in two-stage form.
template <int DegT> inline void stepPhaseASliced(FastCtx &C) {
  stepPrologue(C);
  StageAWords W;
  stageASweep<DegT>(C, W);
  stageB(C, W);
  latchSolved(C);
}

template <int DegT> void stepLanesSliced(FastCtx *const *Lanes,
                                         int NumLanes) {
  for (int L = 0; L != NumLanes; ++L)
    if (!Lanes[L]->Done)
      stepPhaseASliced<DegT>(*Lanes[L]);
  for (int L = 0; L != NumLanes; ++L)
    if (!Lanes[L]->Done)
      stepPhaseB(*Lanes[L]);
}

template <int DegT> void soloLaneSliced(FastCtx &C) {
  while (!C.Done) {
    stepPhaseASliced<DegT>(C);
    if (!C.Done)
      stepPhaseB(C);
  }
}

} // namespace

const LaneKernel &sliced64LaneKernel() {
  static const LaneKernel K = {SimdBackend::Sliced64, 8, stepLanesSliced<4>,
                               stepLanesSliced<6>, soloLaneSliced<4>,
                               soloLaneSliced<6>};
  return K;
}

} // namespace simd
} // namespace ca2a
