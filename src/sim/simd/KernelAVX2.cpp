//===- sim/simd/KernelAVX2.cpp - AVX2 gather/blend lane kernel ------------===//
//
// The x86-64 vector backend: the two-stage pass-1 split of FastPath.h with
// stage A executed eight agents per instruction. The stage-A work —
// neighbour-OR exchange, front-cell lookup, colour observation, table row
// resolution — is independent across agents (it reads only pre-step state
// and writes only per-agent slots), so it maps onto AVX2 gathers over the
// shared per-cell arrays and mask blends over the per-agent ones. The
// boolean verdicts come back as movemask bits, which drop straight into
// the 64-bit verdict words stage B consumes; stage B (the claim sweep,
// serial in agent id by the arbitration contract) and pass 2 are shared
// with the portable backends, so every value this kernel produces is
// computed by the same arithmetic in the same order as the scalar sweep —
// bit-identical by construction, and pinned by the per-backend
// differential matrix in tests/sim.
//
// Memory-safety contract with the engine (see BatchEngine.cpp):
//   * The narrowed neighbour table carries >= 2 padding entries so the
//     4-byte scale-1 gathers of the last cell's int16 row stay in the
//     allocation.
//   * The colour array carries >= 4 padding bytes for the same reason.
//   * Gathered table rows need no padding: the blocked-variant index
//     len - 1 is the last element, read exactly.
//
// This translation unit is compiled with -mavx2 (see src/CMakeLists.txt)
// and its kernels are dispatched only when cpuid reports AVX2 at run time,
// so the fat binary still runs on any x86-64 host. On toolchains or
// architectures without AVX2 support the file compiles to a stub that
// reports the kernel absent.
//
//===----------------------------------------------------------------------===//

#include "sim/simd/FastPath.h"
#include "sim/simd/Kernel.h"

#if defined(CA2A_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace ca2a {
namespace simd {
namespace {

/// Stage A for agents [Id0, Id0 + 8). Precondition: the step's even and
/// odd tables coincide (Single always, TimeShuffle every step) — the
/// caller falls back to the scalar stage-A body otherwise, since a
/// per-parity table base cannot be a single gather base.
template <int DegT>
inline void stageAChunk8(FastCtx &C, int Id0, StageAWords &W) {
  const int *NBb = reinterpret_cast<const int *>(C.NB);
  const long long *CW = reinterpret_cast<const long long *>(C.CellW);
  const int *ColB = reinterpret_cast<const int *>(C.ColorsP);
  const int *Tab = reinterpret_cast<const int *>(C.TabEven);
  const __m256i Mask16 = _mm256_set1_epi32(0xFFFF);
  const __m256i Mask8 = _mm256_set1_epi32(0xFF);
  const __m256i Zero = _mm256_setzero_si256();

  // Unpack the 8 packed agent words into cell / direction / state vectors.
  const __m256i A03 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i *>(C.AgentP + Id0));
  const __m256i A47 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i *>(C.AgentP + Id0 + 4));
  const __m256i EvenIdx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i OddIdx = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
  const __m256i Cells = _mm256_permute2x128_si256(
      _mm256_permutevar8x32_epi32(A03, EvenIdx),
      _mm256_permutevar8x32_epi32(A47, EvenIdx), 0x20);
  const __m256i HiW = _mm256_permute2x128_si256(
      _mm256_permutevar8x32_epi32(A03, OddIdx),
      _mm256_permutevar8x32_epi32(A47, OddIdx), 0x20);
  const __m256i Dirs = _mm256_and_si256(HiW, Mask8);
  const __m256i States =
      _mm256_and_si256(_mm256_srli_epi32(HiW, 8), Mask8);

  // Byte offset of each agent's int16 neighbour row (stride 2 * DegT).
  const __m256i RowOff =
      _mm256_mullo_epi32(Cells, _mm256_set1_epi32(2 * DegT));

  // Exchange: OR the DegT neighbour cells' comm words into each agent's
  // row. Neighbour indices come from scale-1 dword gathers over the
  // padded int16 table; comm words from scale-8 qword gathers.
  __m256i W03 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i *>(C.CommW + Id0));
  __m256i W47 = _mm256_loadu_si256(
      reinterpret_cast<const __m256i *>(C.CommW + Id0 + 4));
  for (int D = 0; D != DegT; ++D) {
    const __m256i ND = _mm256_and_si256(
        _mm256_i32gather_epi32(
            NBb, _mm256_add_epi32(RowOff, _mm256_set1_epi32(2 * D)), 1),
        Mask16);
    W03 = _mm256_or_si256(
        W03, _mm256_i32gather_epi64(CW, _mm256_castsi256_si128(ND), 8));
    W47 = _mm256_or_si256(
        W47, _mm256_i32gather_epi64(CW, _mm256_extracti128_si256(ND, 1), 8));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(C.CommW + Id0), W03);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(C.CommW + Id0 + 4), W47);
  const __m256i FullV =
      _mm256_set1_epi64x(static_cast<long long>(C.Full));
  const int InfLo = _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpeq_epi64(W03, FullV)));
  const int InfHi = _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpeq_epi64(W47, FullV)));
  W.Informed |= static_cast<uint64_t>(InfLo | (InfHi << 4)) << Id0;

  // Front cells (the Dirs-th neighbour) and their occupancy verdicts — a
  // cell holds an agent exactly when its comm word is nonzero.
  const __m256i Front = _mm256_and_si256(
      _mm256_i32gather_epi32(
          NBb, _mm256_add_epi32(RowOff, _mm256_slli_epi32(Dirs, 1)), 1),
      Mask16);
  const __m256i FW03 =
      _mm256_i32gather_epi64(CW, _mm256_castsi256_si128(Front), 8);
  const __m256i FW47 =
      _mm256_i32gather_epi64(CW, _mm256_extracti128_si256(Front, 1), 8);
  const int EmptyLo = _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpeq_epi64(FW03, Zero)));
  const int EmptyHi = _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_cmpeq_epi64(FW47, Zero)));
  W.FrontOcc |= static_cast<uint64_t>((~EmptyLo & 0xF) |
                                      ((~EmptyHi & 0xF) << 4))
                << Id0;

  // Observation: own and front colours (scale-1 dword gathers over the
  // padded byte array), then the flat table row index
  // 2 * (own + NC * front) * St + state, and both entry variants.
  const __m256i ColC =
      _mm256_and_si256(_mm256_i32gather_epi32(ColB, Cells, 1), Mask8);
  const __m256i ColF =
      _mm256_and_si256(_mm256_i32gather_epi32(ColB, Front, 1), Mask8);
  const __m256i RowIdx = _mm256_add_epi32(
      _mm256_mullo_epi32(
          _mm256_slli_epi32(
              _mm256_add_epi32(
                  ColC, _mm256_mullo_epi32(ColF, _mm256_set1_epi32(C.NC))),
              1),
          _mm256_set1_epi32(C.St)),
      States);
  const __m256i EntFree = _mm256_i32gather_epi32(Tab, RowIdx, 4);
  const __m256i EntBlocked = _mm256_i32gather_epi32(
      Tab, _mm256_add_epi32(RowIdx, _mm256_set1_epi32(C.St)), 4);

  // Move-request verdicts.
  const __m256i GazeV =
      _mm256_set1_epi32(C.Gaze ? static_cast<int>(MoveBit) : 0);
  const __m256i ReqZero = _mm256_cmpeq_epi32(
      _mm256_and_si256(_mm256_or_si256(EntFree, GazeV),
                       _mm256_set1_epi32(static_cast<int>(MoveBit))),
      Zero);
  const int ReqZ =
      _mm256_movemask_ps(_mm256_castsi256_ps(ReqZero));
  W.Requests |= static_cast<uint64_t>(~ReqZ & 0xFF) << Id0;

  // Stash for stage B: ScratchP[Id] = EntFree | EntBlocked << 32 and
  // SelP[Id] = Front << 32, via dword interleaves.
  const __m256i SLo = _mm256_unpacklo_epi32(EntFree, EntBlocked);
  const __m256i SHi = _mm256_unpackhi_epi32(EntFree, EntBlocked);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(C.ScratchP + Id0),
                      _mm256_permute2x128_si256(SLo, SHi, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(C.ScratchP + Id0 + 4),
                      _mm256_permute2x128_si256(SLo, SHi, 0x31));
  const __m256i FLo = _mm256_unpacklo_epi32(Zero, Front);
  const __m256i FHi = _mm256_unpackhi_epi32(Zero, Front);
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(C.SelP + Id0),
                      _mm256_permute2x128_si256(FLo, FHi, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i *>(C.SelP + Id0 + 4),
                      _mm256_permute2x128_si256(FLo, FHi, 0x31));
}

/// One iteration's phase A: vector chunks of 8 with a scalar tail; whole
/// lane falls back to the scalar stage-A body when the step's two table
/// slots differ by agent parity (SpeciesParity). Stage B is the shared
/// serial claim sweep.
template <int DegT> inline void stepPhaseAAVX2(FastCtx &C) {
  stepPrologue(C);
  StageAWords W;
  if (C.TabEven != C.TabOdd) {
    for (int Id = 0; Id != C.K; ++Id)
      stageAOne<DegT>(C, Id, W);
  } else {
    int Id = 0;
    for (; Id + 8 <= C.K; Id += 8)
      stageAChunk8<DegT>(C, Id, W);
    for (; Id != C.K; ++Id)
      stageAOne<DegT>(C, Id, W);
  }
  stageB(C, W);
  latchSolved(C);
}

template <int DegT> void stepLanesAVX2(FastCtx *const *Lanes, int NumLanes) {
  for (int L = 0; L != NumLanes; ++L)
    if (!Lanes[L]->Done)
      stepPhaseAAVX2<DegT>(*Lanes[L]);
  for (int L = 0; L != NumLanes; ++L)
    if (!Lanes[L]->Done)
      stepPhaseB(*Lanes[L]);
}

template <int DegT> void soloLaneAVX2(FastCtx &C) {
  while (!C.Done) {
    stepPhaseAAVX2<DegT>(C);
    if (!C.Done)
      stepPhaseB(C);
  }
}

} // namespace

bool avx2KernelCompiled() { return true; }

const LaneKernel &avx2LaneKernel() {
  static const LaneKernel K = {SimdBackend::AVX2, 8, stepLanesAVX2<4>,
                               stepLanesAVX2<6>, soloLaneAVX2<4>,
                               soloLaneAVX2<6>};
  return K;
}

} // namespace simd
} // namespace ca2a

#else // !CA2A_SIMD_AVX2

namespace ca2a {
namespace simd {

bool avx2KernelCompiled() { return false; }

/// Never dispatched (simdBackendAvailable(AVX2) is false without the
/// compiled kernel); returning the scalar kernel keeps the symbol defined.
const LaneKernel &avx2LaneKernel() { return scalarLaneKernel(); }

} // namespace simd
} // namespace ca2a

#endif // CA2A_SIMD_AVX2
