//===- sim/simd/ReplicaSlab.h - Replica-major slab grouping -----*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replica-major ("rmaj64") slab machinery behind SimdBackend::RMaj64.
///
/// The paper's headline numbers are averages over thousands of replicas of
/// the *same* (genome, field) configuration. Those replicas are
/// deterministic clones: without faults their trajectories are identical
/// word for word, and *with* faults they follow the identical fault-free
/// trajectory until the first fault actually fires (fault draws consume
/// RNG state but mutate nothing until one succeeds). A slab exploits this:
///
///   * up to 64 compatible replicas ("lanes") share ONE master trajectory,
///     stepped on the fast path by the sliced64 bit-sliced kernel — the
///     per-step cost of a whole slab is one replica-step plus the lanes'
///     fault draws, with zero per-lane gathers;
///   * each lane owns its private fault-RNG stream (seeded from its own
///     FaultModel::Seed) and draws it serially every step in exactly the
///     reference World's draw order — deaths, stalls, colour flips, then
///     link drops per (agent, direction) — so draw counts match the
///     reference bit-for-bit;
///   * the moment any draw fires, that lane *retires*: the engine clones
///     the master's state at the current step into a scratch workspace,
///     restores the lane's RNG to its pre-step snapshot, and finishes the
///     replica on the general (fault-capable) path, replaying the firing
///     step and everything after it exactly as the reference would;
///   * lanes that never fire converge with the master and share its
///     result (their fault counters are provably zero).
///
/// The divergence mask is therefore the lane list itself: retirement
/// removes a lane without perturbing the master or its siblings, which is
/// what keeps every lane bit-identical to a solo reference run.
///
/// This header holds the engine-independent pieces: slab eligibility, the
/// compatibility key (what "same configuration" means), and the per-step
/// fault-draw sweep. The slab worker loop — enrolment, the master
/// lockstep arena, retirement, and result fan-out — lives in
/// sim/BatchEngine.cpp, since it needs the replica workspaces.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_SIMD_REPLICASLAB_H
#define CA2A_SIM_SIMD_REPLICASLAB_H

#include "sim/BatchEngine.h"
#include "support/Rng.h"

#include <cstdint>

namespace ca2a {
namespace simd {

/// Lanes per slab: one bit of divergence bookkeeping per word bit, and the
/// same bound as the fast path's single comm word (k <= 64).
constexpr int SlabLaneCapacity = 64;

/// True when \p R can ride in a slab at all: the fast-path structural
/// conditions that do not depend on the engine instance (k <= 64 agents so
/// comm rows are one word, cyclic field). Fault probabilities do NOT
/// disqualify a replica — faulty lanes are the point — and neither does a
/// LinkFilter, because every lane draws against its own model. The engine
/// additionally requires its Neighbors16 table (large grids fall back to
/// the general path as singleton groups).
bool slabLaneEligible(const BatchReplica &R);

/// True when \p A and \p B are clones modulo their fault model: same
/// compiled genomes (by pointer, matching the compile cache's identity),
/// same policy, same placements, and same SimOptions apart from Faults.
/// Two compatible replicas follow the identical fault-free master
/// trajectory, which is the correctness premise of slab sharing.
bool slabCompatible(const BatchReplica &A, const BatchReplica &B);

/// Hash consistent with slabCompatible (equal replicas hash equally).
/// Used only to bucket candidates — group membership is always decided by
/// the full slabCompatible comparison, so hash quality affects grouping
/// speed, never grouping results.
uint64_t slabKeyHash(const BatchReplica &R);

/// Draws one step's worth of fault decisions from \p R in the reference
/// World's exact order and returns true as soon as any draw fires.
///
/// On a false return, \p R has consumed precisely the draws the reference
/// engine would have consumed for a step where nothing fired (deaths and
/// stalls per agent, colour flips per cell, link drops per live
/// (agent, direction) pair gated by the optional LinkFilter). On a true
/// return the stream is mid-step and must be discarded: the caller
/// restores the lane's pre-step snapshot and replays the whole step on
/// the general path, which re-draws it identically.
///
/// \p AgentPack is the master's packed per-agent state at the *start* of
/// the step (simd::packAgent layout) — link-drop draws need each agent's
/// current cell for the LinkFilter gate. All lanes are alive and unstalled
/// by construction (any earlier fire would have retired the lane), so the
/// alive-gating in the reference loops degenerates to "draw for everyone".
bool drawStepFaults(Rng &R, const FaultModel &F, bool ColorsEnabled, int K,
                    int NumCells, int Degree, const Torus &T,
                    const uint64_t *AgentPack);

} // namespace simd
} // namespace ca2a

#endif // CA2A_SIM_SIMD_REPLICASLAB_H
