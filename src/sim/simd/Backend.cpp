//===- sim/simd/Backend.cpp - SIMD backend selection & dispatch -----------===//

#include "sim/simd/Backend.h"

#include "sim/simd/Kernel.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

using namespace ca2a;

const char *ca2a::simdBackendName(SimdBackend B) {
  switch (B) {
  case SimdBackend::Auto:
    return "auto";
  case SimdBackend::Scalar:
    return "scalar";
  case SimdBackend::Sliced64:
    return "sliced64";
  case SimdBackend::AVX2:
    return "avx2";
  case SimdBackend::RMaj64:
    return "rmaj64";
  }
  return "auto";
}

bool ca2a::parseSimdBackend(const std::string &Text, SimdBackend &B) {
  std::string Lower = Text;
  for (char &C : Lower)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Lower == "auto") {
    B = SimdBackend::Auto;
    return true;
  }
  if (Lower == "scalar") {
    B = SimdBackend::Scalar;
    return true;
  }
  if (Lower == "sliced64" || Lower == "sliced") {
    B = SimdBackend::Sliced64;
    return true;
  }
  if (Lower == "avx2") {
    B = SimdBackend::AVX2;
    return true;
  }
  if (Lower == "rmaj64" || Lower == "rmaj") {
    B = SimdBackend::RMaj64;
    return true;
  }
  return false;
}

namespace {

/// Runtime CPU probe, evaluated once. The kernel must also be compiled in
/// (simd::avx2KernelCompiled): a build without x86 -mavx2 support reports
/// the backend unavailable even on an AVX2 CPU.
bool cpuHasAVX2() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool Has = __builtin_cpu_supports("avx2");
  return Has;
#else
  return false;
#endif
}

} // namespace

bool ca2a::simdBackendAvailable(SimdBackend B) {
  switch (B) {
  case SimdBackend::Auto:
  case SimdBackend::Scalar:
  case SimdBackend::Sliced64:
  case SimdBackend::RMaj64:
    return true;
  case SimdBackend::AVX2:
    return simd::avx2KernelCompiled() && cpuHasAVX2();
  }
  return false;
}

std::vector<SimdBackend> ca2a::availableSimdBackends() {
  std::vector<SimdBackend> Out;
  if (simdBackendAvailable(SimdBackend::AVX2))
    Out.push_back(SimdBackend::AVX2);
  Out.push_back(SimdBackend::Sliced64);
  // rmaj64 stays out of the front slot: its clone-slab win only exists on
  // replica-averaged workloads, and on distinct-configuration batches it
  // matches sliced64 (whose kernel steps its masters). Listing it here
  // still enrolls it in every availableSimdBackends()-driven test sweep.
  Out.push_back(SimdBackend::RMaj64);
  Out.push_back(SimdBackend::Scalar);
  return Out;
}

const char *ca2a::simdBackendForceEnvVar() { return "CA2A_FORCE_BACKEND"; }

SimdBackend ca2a::resolveSimdBackend(SimdBackend Requested) {
  // Forcing wins over everything — it exists so CI (and the determinism
  // sweeps) can pin a backend without touching every call site. Read on
  // every call: tests re-point it between runs.
  if (const char *Env = std::getenv(simdBackendForceEnvVar());
      Env && *Env) {
    SimdBackend Forced;
    if (parseSimdBackend(Env, Forced) && Forced != SimdBackend::Auto) {
      if (simdBackendAvailable(Forced))
        return Forced;
      std::fprintf(stderr,
                   "warning: %s=%s is not available on this host; "
                   "falling back\n",
                   simdBackendForceEnvVar(), Env);
    } else {
      std::fprintf(stderr, "warning: unrecognised %s='%s' ignored\n",
                   simdBackendForceEnvVar(), Env);
    }
  }
  if (Requested != SimdBackend::Auto) {
    if (simdBackendAvailable(Requested))
      return Requested;
    std::fprintf(stderr,
                 "warning: backend '%s' is not available on this host; "
                 "falling back to '%s'\n",
                 simdBackendName(Requested),
                 simdBackendName(availableSimdBackends().front()));
  }
  return availableSimdBackends().front();
}

std::string ca2a::simdBackendSummary() {
  std::string Out;
  for (SimdBackend B : availableSimdBackends()) {
    if (!Out.empty())
      Out += " ";
    Out += simdBackendName(B);
  }
  Out += cpuHasAVX2() ? " (cpu: avx2)" : " (cpu: no avx2)";
  if (!simd::avx2KernelCompiled())
    Out += " [avx2 kernel not compiled]";
  return Out;
}
