//===- sim/simd/ReplicaSlab.cpp - Replica-major slab grouping -------------===//

#include "sim/simd/ReplicaSlab.h"

#include "sim/simd/FastPath.h"
#include "support/Hash.h"

#include <cassert>

using namespace ca2a;

bool simd::slabLaneEligible(const BatchReplica &R) {
  const int K = static_cast<int>(R.Placements->size());
  return K >= 1 && K <= SlabLaneCapacity && !R.Options->Bordered;
}

namespace {

/// Effective genome pair: a null B means "A throughout" (policy Single in
/// spirit), so normalise before comparing — two replicas whose tables
/// resolve identically must land in the same slab bucket.
const Genome *effectiveB(const BatchReplica &R) { return R.B ? R.B : R.A; }

bool sameStart(const StartStates &A, const StartStates &B) {
  return A.M == B.M && A.UniformValue == B.UniformValue;
}

} // namespace

bool simd::slabCompatible(const BatchReplica &A, const BatchReplica &B) {
  if (A.A != B.A || effectiveB(A) != effectiveB(B) || A.Policy != B.Policy)
    return false;
  if (A.Placements != B.Placements) {
    if (A.Placements->size() != B.Placements->size())
      return false;
    for (size_t I = 0, E = A.Placements->size(); I != E; ++I) {
      const Placement &PA = (*A.Placements)[I];
      const Placement &PB = (*B.Placements)[I];
      if (!(PA.Pos == PB.Pos) || PA.Direction != PB.Direction)
        return false;
    }
  }
  const SimOptions &OA = *A.Options;
  const SimOptions &OB = *B.Options;
  // Everything except Faults: the fault model is per-lane state (each lane
  // draws its own stream against its own probabilities/filter), so it is
  // deliberately absent from the compatibility key.
  if (OA.MaxSteps != OB.MaxSteps || !sameStart(OA.Start, OB.Start) ||
      OA.ColorsEnabled != OB.ColorsEnabled ||
      OA.Arbitration != OB.Arbitration || OA.Bordered != OB.Bordered)
    return false;
  if (&OA.Obstacles != &OB.Obstacles) {
    if (OA.Obstacles.size() != OB.Obstacles.size())
      return false;
    for (size_t I = 0, E = OA.Obstacles.size(); I != E; ++I)
      if (!(OA.Obstacles[I] == OB.Obstacles[I]))
        return false;
  }
  return true;
}

uint64_t simd::slabKeyHash(const BatchReplica &R) {
  Fnv1aHasher H;
  H.mixWord(reinterpret_cast<uintptr_t>(R.A));
  H.mixWord(reinterpret_cast<uintptr_t>(effectiveB(R)));
  H.mixWord(static_cast<uint64_t>(R.Policy));
  for (const Placement &P : *R.Placements) {
    H.mixWord((static_cast<uint64_t>(static_cast<uint32_t>(P.Pos.X)) << 32) |
              static_cast<uint32_t>(P.Pos.Y));
    H.mixWord(P.Direction);
  }
  const SimOptions &O = *R.Options;
  H.mixWord(static_cast<uint64_t>(static_cast<uint32_t>(O.MaxSteps)));
  H.mixWord(static_cast<uint64_t>(O.Start.M));
  H.mixWord(O.Start.UniformValue);
  H.mixWord(O.ColorsEnabled);
  H.mixWord(static_cast<uint64_t>(O.Arbitration));
  H.mixWord(O.Bordered);
  for (const Coord &C : O.Obstacles)
    H.mixWord((static_cast<uint64_t>(static_cast<uint32_t>(C.X)) << 32) |
              static_cast<uint32_t>(C.Y));
  return H.value();
}

bool simd::drawStepFaults(Rng &R, const FaultModel &F, bool ColorsEnabled,
                          int K, int NumCells, int Degree, const Torus &T,
                          const uint64_t *AgentPack) {
  // Reference order (ReplicaWorkspace::injectFaults, then exchange):
  // deaths, stalls, colour flips, link drops. All agents are alive, so
  // every per-agent gate passes and the draw counts below are exactly what
  // the reference consumes on a step where nothing fires. The first
  // success returns immediately — the caller discards this mid-step
  // stream and replays the step from its pre-step snapshot.
  if (F.DeathProbability > 0.0)
    for (int Id = 0; Id != K; ++Id)
      if (R.bernoulli(F.DeathProbability))
        return true;
  if (F.StallProbability > 0.0)
    for (int Id = 0; Id != K; ++Id)
      if (R.bernoulli(F.StallProbability))
        return true;
  if (F.ColorFlipProbability > 0.0 && ColorsEnabled)
    for (int C = 0; C != NumCells; ++C)
      if (R.bernoulli(F.ColorFlipProbability))
        return true;
  if (F.LinkDropProbability > 0.0) {
    for (int Id = 0; Id != K; ++Id) {
      const int Cell = agentCell(AgentPack[Id]);
      for (int D = 0; D != Degree; ++D)
        if ((!F.LinkFilter ||
             F.LinkFilter(T, Cell, static_cast<uint8_t>(D))) &&
            R.bernoulli(F.LinkDropProbability))
          return true;
    }
  }
  return false;
}
