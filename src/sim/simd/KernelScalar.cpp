//===- sim/simd/KernelScalar.cpp - Scalar lane kernel ---------------------===//
//
// The baseline backend: the fused per-agent sweep of FastPath.h applied to
// each lane in turn. Phase A of every live lane runs before any phase B —
// interleaving independent replicas at phase granularity fills the
// pipeline stalls a single replica's dependence chains leave open (the
// PR-4 lockstep discipline, unchanged).
//
//===----------------------------------------------------------------------===//

#include "sim/simd/FastPath.h"
#include "sim/simd/Kernel.h"

namespace ca2a {
namespace simd {
namespace {

template <int DegT> void stepLanesScalar(FastCtx *const *Lanes, int NumLanes) {
  for (int L = 0; L != NumLanes; ++L)
    if (!Lanes[L]->Done)
      stepPhaseA<DegT>(*Lanes[L]);
  for (int L = 0; L != NumLanes; ++L)
    if (!Lanes[L]->Done)
      stepPhaseB(*Lanes[L]);
}

template <int DegT> void soloLaneScalar(FastCtx &C) { soloRunScalar<DegT>(C); }

} // namespace

const LaneKernel &scalarLaneKernel() {
  static const LaneKernel K = {SimdBackend::Scalar, 8, stepLanesScalar<4>,
                               stepLanesScalar<6>, soloLaneScalar<4>,
                               soloLaneScalar<6>};
  return K;
}

} // namespace simd
} // namespace ca2a
