//===- sim/simd/FastPath.h - Fast-path replica step core --------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-word fast-path step core shared by the batch engine and the
/// per-backend lane kernels (sim/simd/Kernel*.cpp). Everything here is a
/// line-for-line semantic port of World's exchange/arbitrate/apply loop
/// restructured into flat arrays — see sim/BatchEngine.cpp for the
/// surrounding execution layer and the preconditions (no faults, no
/// borders, one communication word so k <= 64, narrowed neighbour table,
/// no observer).
///
/// Three step formulations live here, all bit-identical per replica:
///
///   * The fused scalar sweep (pass1Sweep/pass2Sweep) — one pass over the
///     agents doing exchange, observation and arbitration together. The
///     scalar backend's kernel.
///   * The two-stage split (stageAOne + stageB) — stage A is the
///     gather/observe part, independent across agents, recording its
///     per-agent boolean verdicts (move request, front-cell occupancy,
///     informedness) as packed bits of 64-bit words; stage B is the
///     claim/arbitration part, serial in agent id exactly like the
///     reference. The sliced64 backend runs both stages portably; the
///     AVX2 backend vectorises stage A eight agents per instruction and
///     shares stage B. The split is legal because stage A only reads
///     pre-step state (CellComm, Colors, the tables) and only writes
///     per-agent slots (Comm, scratch), while every claim-stamp access
///     stays in stage B in id order.
///
/// Contract inversion under rmaj64: for the scalar/sliced64/avx2
/// backends the engine owns the step loop — workerLoop in BatchEngine.cpp
/// calls Step/Solo per iteration (or to completion) and the kernel is a
/// pure per-step function over a FastCtx. The replica-major backend
/// inverts that: the slab worker loop owns stepping outright, because it
/// must interleave work the kernel cannot see between iterations — the
/// per-lane fault-draw sweep that decides, BEFORE the master executes
/// step t, which enrolled replicas' private fault streams fire at t and
/// must retire to the general path (sim/simd/ReplicaSlab.h). The step
/// functions themselves are untouched: a slab master is an ordinary
/// fast-path FastCtx stepped by the sliced64 formulation, so rmaj64 adds
/// no fourth step formulation here — only a different owner for the loop
/// around the existing ones.
///
/// This header is internal to the simulation library: it is not part of
/// the public engine API and may change freely.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_SIMD_FASTPATH_H
#define CA2A_SIM_SIMD_FASTPATH_H

#include "sim/World.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace ca2a {
namespace simd {

/// One genome slot, flattened into one 32-bit word for single-load lookup
/// (the "32-entry transition table" at paper dimensions): byte 0 is the
/// next state, byte 1 the move bit, byte 2 the colour to set, byte 3 the
/// turn code. A packed word instead of a 4-byte struct matters: GCC
/// compiles conditional struct selects into branchy per-byte assembly,
/// where the word version is one load, one AND and shifts.
using PackedEntry = uint32_t;
constexpr PackedEntry MoveBit = 0x100;
constexpr uint8_t entryState(PackedEntry E) { return static_cast<uint8_t>(E); }
constexpr bool entryMoves(PackedEntry E) { return (E & MoveBit) != 0; }
constexpr uint8_t entryColor(PackedEntry E) {
  return static_cast<uint8_t>(E >> 16);
}
constexpr uint8_t entryTurn(PackedEntry E) {
  return static_cast<uint8_t>(E >> 24);
}

/// Obstacle sentinel in the claim-stamp array: compares "already claimed"
/// against every epoch (the wrap guard keeps Epoch strictly below it).
constexpr uint32_t ObstacleStamp = ~uint32_t(0);

constexpr uint64_t packAgent(int Cell, uint8_t Dir, uint8_t State) {
  return static_cast<uint32_t>(Cell) | (static_cast<uint64_t>(Dir) << 32) |
         (static_cast<uint64_t>(State) << 40);
}
constexpr int agentCell(uint64_t A) {
  return static_cast<int32_t>(static_cast<uint32_t>(A));
}
constexpr uint32_t agentDir(uint64_t A) { return (A >> 32) & 0xFF; }
constexpr uint32_t agentState(uint64_t A) { return (A >> 40) & 0xFF; }

/// Everything the single-word fast path touches, gathered into one struct
/// of raw pointers so several independent replicas can be advanced in
/// lockstep: interleaving their per-step work fills the pipeline stalls
/// (L1 latency, store forwarding) any single replica's dependence chains
/// leave open.
struct FastCtx {
  const int16_t *NB = nullptr; ///< Narrowed table, stride DegT.
  uint64_t *CommW = nullptr;   ///< One comm word per agent.
  uint64_t *CellW = nullptr;   ///< Word of each cell's occupant (0 empty).
  /// Per-agent packed state: cell in the low 32 bits, direction in byte 4,
  /// control state in byte 5 — one load/store where three arrays would
  /// cost three, and two registers fewer in the hot loops.
  uint64_t *AgentP = nullptr;
  uint8_t *InformedP = nullptr;
  uint8_t *ColorsP = nullptr;
  int32_t *VisitP = nullptr;
  /// Per-cell claim stamps: StampP[Cell] == Epoch means "claimed this
  /// step", anything smaller means free, and the permanent ~0 sentinel
  /// marks obstacle cells (Epoch never reaches it). Monotonic epochs make
  /// the end-of-step claim reset free — bumping Epoch unclaims every cell
  /// at once.
  uint32_t *StampP = nullptr;
  /// Per-agent pass-1 verdict: the selected (move-masked) table entry in
  /// the low 32 bits, the front cell in the high 32.
  uint64_t *SelP = nullptr;
  /// Per-agent two-stage scratch (sliced64/avx2 backends): stage A stashes
  /// the free-hypothesis table entry in the low 32 bits and the blocked
  /// variant in the high 32 for stage B's blend. The scalar backend never
  /// touches it.
  uint64_t *ScratchP = nullptr;
  const PackedEntry *TabA = nullptr, *TabB = nullptr;
  const uint8_t (*TurnMap)[4] = nullptr;
  /// Obstacle flat indices (for the epoch-wrap re-stamp only; the hot loop
  /// sees obstacles through the StampP sentinel).
  const int32_t *ObstC = nullptr;
  uint64_t Full = 0;
  GenomePolicy Policy = GenomePolicy::Single;
  int K = 0, St = 0, NC = 0, MaxSteps = 0;
  int Cells = 0, NumObst = 0;
  bool Gaze = false, ColorsOn = false;
  /// Whether pass 2 maintains per-cell visit counts — only needed when the
  /// caller requested a final-state capture (nothing in SimResult derives
  /// from them).
  bool NeedVisits = false;
  // Per-step scratch and progress.
  const PackedEntry *TabEven = nullptr, *TabOdd = nullptr;
  uint32_t Epoch = 0;
  int NewInformed = 0, Time = 0;
  bool Done = false, Success = false;
};

/// Pick this step's transition tables from the genome policy.
inline void selectTables(FastCtx &C) {
  C.TabEven = C.TabA;
  C.TabOdd = C.TabA;
  if (C.Policy == GenomePolicy::TimeShuffle && (C.Time % 2)) {
    C.TabEven = C.TabB;
    C.TabOdd = C.TabB;
  } else if (C.Policy == GenomePolicy::SpeciesParity) {
    C.TabOdd = C.TabB;
  }
}

/// Start-of-iteration bookkeeping every backend shares: table selection
/// and the claim-epoch bump. Bumping the epoch unclaims every cell stamped
/// in earlier steps; the (once per ~4G steps) wrap rebuilds the stamp
/// invariant from scratch.
inline void stepPrologue(FastCtx &C) {
  selectTables(C);
  if (++C.Epoch == ObstacleStamp) {
    std::fill_n(C.StampP, C.Cells, 0u);
    for (int J = 0; J != C.NumObst; ++J)
      C.StampP[C.ObstC[J]] = ObstacleStamp;
    C.Epoch = 1;
  }
}

/// End-of-pass-1 success latch: when every agent became informed the
/// replica solves, Time stays at t_comm and the step's actions never run.
inline void latchSolved(FastCtx &C) {
  if (C.NewInformed == C.K) {
    C.Done = true;
    C.Success = true;
  }
}

/// Pass 1 over every agent: exchange, observation, and arbitration fused
/// into one sweep (the scalar backend). The context is spilled into local
/// restrict pointers first — member-level restrict is too weak for GCC to
/// keep the pointer set in registers across the uint8_t stores, and this
/// loop is the hottest code in the repo.
///  - Exchange: CellComm holds the pre-step word of every cell (0 when
///    empty), so each agent ORs its neighbour ring with no occupancy
///    branch, and the result goes straight into Comm — no double buffer.
///    Nothing else in pass 1 reads Comm, so the success check can wait
///    until the sweep ends (claims are scratch; on success the step's
///    actions are skipped exactly as the reference engine skips them).
///  - Arbitration: losesConflict only asks whether a LOWER-id requester
///    claims the same cell, and agents run in id order — so when agent Id
///    arrives, every claim that can beat it is already stamped and its
///    canmove is final immediately (occupancy is pre-step and untouched
///    here). "Enterable" needs no occupancy array at all: a cell holds an
///    agent exactly when its CellComm word is nonzero (every agent's word
///    carries its own bit), and obstacle cells carry the permanent
///    ObstacleStamp so one epoch compare rejects both prior claims and
///    obstacles. The claim update is a branch-free max so the
///    genome-dependent move output never becomes a mispredicting branch.
///  - The entry for the final (blocked-corrected) input is resolved now —
///    blocked flips only the lowest input bit, i.e. shifts the table row
///    by States — and its Move bit is masked by the arbitration verdict,
///    so pass 2 does no table addressing and no canmove load at all.
template <int DegT> inline void pass1Sweep(FastCtx &C) {
  const int16_t *__restrict__ NB = C.NB;
  uint64_t *__restrict__ CommW = C.CommW;
  const uint64_t *__restrict__ CellW = C.CellW;
  const uint64_t *__restrict__ AgentP = C.AgentP;
  const uint8_t *__restrict__ ColorsP = C.ColorsP;
  uint32_t *__restrict__ StampP = C.StampP;
  uint64_t *__restrict__ SelP = C.SelP;
  const PackedEntry *TabEven = C.TabEven, *TabOdd = C.TabOdd;
  const uint64_t Full = C.Full;
  const uint32_t Epoch = C.Epoch;
  const int St = C.St, NC = C.NC, K = C.K;
  const uint32_t Gaze = C.Gaze ? MoveBit : 0;
  int NewInformed = 0;

  for (int Id = 0; Id != K; ++Id) {
    const uint64_t A = AgentP[Id];
    const int Cell = agentCell(A);
    const int16_t *N = &NB[static_cast<size_t>(Cell) * DegT];
    uint64_t W = CommW[Id];
    for (int D = 0; D != DegT; ++D)
      W |= CellW[N[D]];
    CommW[Id] = W;
    NewInformed += (W == Full);

    const int Front = N[agentDir(A)];
    const size_t RowIdx =
        static_cast<size_t>(2 * (ColorsP[Cell] + NC * ColorsP[Front]) * St) +
        agentState(A);
    const PackedEntry *Tab = (Id & 1) ? TabOdd : TabEven;
    // Both row variants are loaded unconditionally and blended with mask
    // arithmetic — everything below compiles to straight-line code, so the
    // genome-dependent request/verdict bits never become mispredicting
    // branches (they are near-random across a replica's agents).
    const PackedEntry EntFree = Tab[RowIdx];
    // Blocked flips the lowest input bit, i.e. shifts the row by St.
    const PackedEntry EntBlocked = Tab[RowIdx + static_cast<size_t>(St)];
    // Claims: ids ascend, so a prior claim is already the row minimum and
    // LosesConflict collapses to "someone claimed Front before me" — the
    // min() of the reference implementation is a no-op here. The stamp
    // update is a max so a request can never overwrite the obstacle
    // sentinel (and re-stamping an already-claimed cell is idempotent).
    const bool Requests = ((EntFree | Gaze) & MoveBit) != 0;
    const uint32_t Prior = StampP[Front];
    const bool Open = Prior < Epoch; // Unclaimed and not an obstacle.
    StampP[Front] =
        std::max(Prior, Epoch & (0u - static_cast<uint32_t>(Requests)));
    const bool Can = (CellW[Front] == 0) & Open;
    // The selected entry's move bit is masked by the verdict so pass 2
    // does no table access and no canmove load at all.
    const uint32_t CanMask = 0u - static_cast<uint32_t>(Can);
    const PackedEntry Sel =
        (EntFree & CanMask) | (EntBlocked & ~MoveBit & ~CanMask);
    SelP[Id] = Sel | (static_cast<uint64_t>(static_cast<uint32_t>(Front))
                      << 32);
  }
  C.NewInformed = NewInformed;
}

/// Pass 2 over every agent: apply the selected entries, keeping the
/// per-cell comm words in sync. Moves are applied with unconditional
/// stores (clear own cell, write the final cell) so the genome-dependent
/// move bit never becomes a branch: a mover's target was empty and
/// uncontested pre-step, so the clears of later agents (all on
/// pre-step-occupied cells) cannot hit an earlier agent's target.
inline void pass2Sweep(FastCtx &C) {
  const uint64_t *__restrict__ SelP = C.SelP;
  uint64_t *__restrict__ AgentP = C.AgentP;
  uint8_t *__restrict__ ColorsP = C.ColorsP;
  int32_t *__restrict__ VisitP = C.VisitP;
  const uint64_t *__restrict__ CommW = C.CommW;
  uint64_t *__restrict__ CellW = C.CellW;
  const uint8_t(*__restrict__ TurnMap)[4] = C.TurnMap;
  const bool ColorsOn = C.ColorsOn;
  const bool NeedV = C.NeedVisits;
  const int K = C.K;

  for (int Id = 0; Id != K; ++Id) {
    const uint64_t E = SelP[Id];
    const PackedEntry En = static_cast<uint32_t>(E);
    const int Front = static_cast<int32_t>(E >> 32);
    const uint64_t A = AgentP[Id];
    const int Cell = agentCell(A);
    if (ColorsOn)
      ColorsP[Cell] = entryColor(En);
    const uint32_t NewDir = TurnMap[agentDir(A)][entryTurn(En)];
    const bool Moves = entryMoves(En); // Blocked was masked in pass 1.
    // XOR-blend instead of a select: the move bit is genome-dependent and
    // GCC compiles the ternary into a mispredicting branch.
    const int NewC = Cell ^ ((Cell ^ Front) & -static_cast<int>(Moves));
    CellW[Cell] = 0;
    CellW[NewC] = CommW[Id];
    if (NeedV) // Loop-invariant; only the diff tests capture visits.
      VisitP[NewC] += Moves;
    AgentP[Id] = packAgent(NewC, static_cast<uint8_t>(NewDir),
                           entryState(En));
  }
}

/// One iteration's exchange/observe/arbitrate phase (pass 1 over every
/// agent, scalar backend). Latches Done (with Success) when the replica
/// solves.
template <int DegT> inline void stepPhaseA(FastCtx &C) {
  stepPrologue(C);
  pass1Sweep<DegT>(C);
  latchSolved(C);
}

/// One iteration's action phase (pass 2 over every agent) plus the cutoff
/// check. Only legal when phase A did not latch Done.
inline void stepPhaseB(FastCtx &C) {
  pass2Sweep(C);
  if (++C.Time >= C.MaxSteps)
    C.Done = true; // Cutoff reached; Success stays false.
}

/// Single-replica scalar step loop to completion (also the lockstep
/// straggler path once only one replica is still running).
template <int DegT> inline void soloRunScalar(FastCtx &C) {
  while (!C.Done) {
    stepPhaseA<DegT>(C);
    if (!C.Done)
      stepPhaseB(C);
  }
}

/// Terminal materialisation: per-agent Informed flags (kept lazy during
/// the loop) and the all-zero CellComm invariant for the next replica.
inline void fastEpilogue(FastCtx &C) {
  if (C.Success) {
    std::fill_n(C.InformedP, C.K, uint8_t(1));
  } else {
    // Cutoff: the flags of the last exchange (the tracked count already
    // matches them; a MaxSteps = 0 run never exchanged and keeps its
    // reset-time flags and count).
    if (C.MaxSteps > 0)
      for (int Id = 0; Id != C.K; ++Id)
        C.InformedP[Id] = C.CommW[Id] == C.Full;
  }
  for (int Id = 0; Id != C.K; ++Id)
    C.CellW[agentCell(C.AgentP[Id])] = 0;
}

//===----------------------------------------------------------------------===//
// Two-stage pass-1 machinery (sliced64 and avx2 backends)
//===----------------------------------------------------------------------===//

/// Per-agent boolean verdicts of one stage-A sweep, bit-sliced across the
/// replica's agents into 64-bit words (the fast path guarantees k <= 64:
/// it requires a single communication word). Bit Id of each word belongs
/// to agent Id.
struct StageAWords {
  uint64_t Requests = 0; ///< FSM would move under the blocked=0 hypothesis.
  uint64_t FrontOcc = 0; ///< The agent's front cell holds an agent.
  uint64_t Informed = 0; ///< Comm word reached the all-survivors mask.
};

/// Stage A for one agent: exchange + observation, recording the verdicts
/// in \p W and stashing the two candidate table entries in ScratchP (and
/// the front cell in SelP's high half) for stage B. Reads only pre-step
/// state; writes only agent \p Id's slots — agents are independent, which
/// is what lets the AVX2 kernel run eight of these per instruction.
template <int DegT> inline void stageAOne(FastCtx &C, int Id, StageAWords &W) {
  const uint64_t A = C.AgentP[Id];
  const int Cell = agentCell(A);
  const int16_t *N = &C.NB[static_cast<size_t>(Cell) * DegT];
  uint64_t Row = C.CommW[Id];
  for (int D = 0; D != DegT; ++D)
    Row |= C.CellW[N[D]];
  C.CommW[Id] = Row;
  W.Informed |= static_cast<uint64_t>(Row == C.Full) << Id;

  const int Front = N[agentDir(A)];
  const size_t RowIdx =
      static_cast<size_t>(2 * (C.ColorsP[Cell] + C.NC * C.ColorsP[Front]) *
                          C.St) +
      agentState(A);
  const PackedEntry *Tab = (Id & 1) ? C.TabOdd : C.TabEven;
  const PackedEntry EntFree = Tab[RowIdx];
  const PackedEntry EntBlocked = Tab[RowIdx + static_cast<size_t>(C.St)];
  const uint32_t Gaze = C.Gaze ? MoveBit : 0;
  W.Requests |= static_cast<uint64_t>(((EntFree | Gaze) & MoveBit) != 0)
                << Id;
  W.FrontOcc |= static_cast<uint64_t>(C.CellW[Front] != 0) << Id;
  C.ScratchP[Id] = EntFree | (static_cast<uint64_t>(EntBlocked) << 32);
  C.SelP[Id] = static_cast<uint64_t>(static_cast<uint32_t>(Front)) << 32;
}

/// Stage B: the claim/arbitration sweep, serial in agent id exactly like
/// the reference engine (a lower id's stamp must be visible to every
/// higher id targeting the same cell). Consumes the packed stage-A
/// verdicts, blends the selected entry branch-free, and sets NewInformed
/// with one popcount over the informed word.
inline void stageB(FastCtx &C, const StageAWords &W) {
  uint32_t *__restrict__ StampP = C.StampP;
  const uint64_t *__restrict__ ScratchP = C.ScratchP;
  uint64_t *__restrict__ SelP = C.SelP;
  const uint32_t Epoch = C.Epoch;
  const int K = C.K;
  for (int Id = 0; Id != K; ++Id) {
    const uint64_t Stash = ScratchP[Id];
    const PackedEntry EntFree = static_cast<uint32_t>(Stash);
    const PackedEntry EntBlocked = static_cast<uint32_t>(Stash >> 32);
    const int Front = static_cast<int32_t>(SelP[Id] >> 32);
    const bool Requests = (W.Requests >> Id) & 1;
    const uint32_t Prior = StampP[Front];
    const bool Open = Prior < Epoch;
    StampP[Front] =
        std::max(Prior, Epoch & (0u - static_cast<uint32_t>(Requests)));
    const bool Can = !((W.FrontOcc >> Id) & 1) & Open;
    const uint32_t CanMask = 0u - static_cast<uint32_t>(Can);
    const PackedEntry Sel =
        (EntFree & CanMask) | (EntBlocked & ~MoveBit & ~CanMask);
    SelP[Id] = Sel | (static_cast<uint64_t>(static_cast<uint32_t>(Front))
                      << 32);
  }
  C.NewInformed = __builtin_popcountll(W.Informed);
}

} // namespace simd
} // namespace ca2a

#endif // CA2A_SIM_SIMD_FASTPATH_H
