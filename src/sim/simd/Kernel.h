//===- sim/simd/Kernel.h - Per-backend lane-step kernels --------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The function-pointer surface between the batch engine's worker loop and
/// the per-backend step implementations (KernelScalar.cpp,
/// KernelSliced64.cpp, KernelAVX2.cpp).
///
/// A kernel advances a set of resident fast-path replicas ("lanes") by one
/// iteration per step() call: phase A (exchange, observation, arbitration;
/// latches Done with Success on solve) for every lane that is not Done,
/// then phase B (actions + cutoff check) for every lane still not Done.
/// Lanes are independent replicas — the kernel choice and the lane
/// grouping cannot change a single bit of any replica's trajectory, which
/// is what keeps every backend bit-identical to the reference World (the
/// per-backend differential matrix in tests/sim pins this).
///
/// solo() runs one lane to completion with the backend's tight loop (the
/// straggler path once a worker's arena has a single live replica left).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_SIMD_KERNEL_H
#define CA2A_SIM_SIMD_KERNEL_H

#include "sim/simd/Backend.h"

namespace ca2a {
namespace simd {

struct FastCtx;

/// Advance every not-Done lane by one iteration.
using LaneStepFn = void (*)(FastCtx *const *Lanes, int NumLanes);
/// Run one lane to completion.
using LaneSoloFn = void (*)(FastCtx &Lane);

/// One backend's step entry points, per torus degree (4 = square grid,
/// 6 = triangulate grid).
struct LaneKernel {
  SimdBackend Backend = SimdBackend::Scalar;
  /// Lanes the worker arena should keep resident for this kernel. Sized
  /// so the combined per-cell state of a paper-sized field stays inside
  /// L1/L2 (tuned on the bench_batch workload).
  int PreferredLanes = 8;
  LaneStepFn Step4 = nullptr;
  LaneStepFn Step6 = nullptr;
  LaneSoloFn Solo4 = nullptr;
  LaneSoloFn Solo6 = nullptr;
};

/// The kernel of a *concrete* (resolved, non-Auto) backend. The AVX2
/// kernel is only returned when simdBackendAvailable(AVX2) — callers
/// resolve first.
const LaneKernel &laneKernel(SimdBackend Resolved);

/// True when this binary carries the AVX2 kernel (compiled on an x86-64
/// toolchain with -mavx2 support). Runtime cpuid is probed separately by
/// simdBackendAvailable().
bool avx2KernelCompiled();

/// Per-backend accessors (implementation detail of laneKernel; one per
/// kernel translation unit). Without a compiled AVX2 kernel,
/// avx2LaneKernel() aliases the scalar kernel and is never dispatched.
/// The rmaj64 kernel steps slab *masters* with the sliced64 formulation;
/// the replica-major machinery itself (slab grouping, per-lane fault
/// draws, retirement) lives in sim/simd/ReplicaSlab.h and the batch
/// engine's slab worker loop, keyed off LaneKernel::Backend == RMaj64.
const LaneKernel &scalarLaneKernel();
const LaneKernel &sliced64LaneKernel();
const LaneKernel &avx2LaneKernel();
const LaneKernel &rmaj64LaneKernel();

} // namespace simd
} // namespace ca2a

#endif // CA2A_SIM_SIMD_KERNEL_H
