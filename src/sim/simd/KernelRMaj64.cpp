//===- sim/simd/KernelRMaj64.cpp - Replica-major slab kernel entry --------===//
//
// The rmaj64 backend's unit of lockstep is the replica, not the agent: the
// batch engine groups compatible replicas into slabs (see ReplicaSlab.h)
// and each slab steps ONE master trajectory. That master is an ordinary
// single-word fast-path replica, and the portable sliced64 formulation is
// the best always-available way to step it — so this kernel re-exports the
// sliced64 entry points under the RMaj64 tag. What makes the backend
// different is everything around the step functions: the slab worker loop
// in BatchEngine.cpp owns enrolment, the per-lane fault-draw sweep,
// retirement, and result fan-out, and it selects that loop by
// LaneKernel::Backend == RMaj64.
//
//===----------------------------------------------------------------------===//

#include "sim/simd/Kernel.h"

namespace ca2a {
namespace simd {

const LaneKernel &rmaj64LaneKernel() {
  static const LaneKernel Kernel = [] {
    LaneKernel K = sliced64LaneKernel();
    K.Backend = SimdBackend::RMaj64;
    // PreferredLanes counts resident slab *masters* per worker; each one
    // carries the same per-cell state as a sliced64 lane, so the same
    // cache-footprint tuning applies.
    return K;
  }();
  return Kernel;
}

} // namespace simd
} // namespace ca2a
