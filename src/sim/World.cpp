//===- sim/World.cpp - Synchronous CA multi-agent engine ------------------===//

#include "sim/World.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace ca2a;

World::World(const Torus &T) : T(T) {
  Colors.resize(static_cast<size_t>(T.numCells()), 0);
  Occupancy.resize(static_cast<size_t>(T.numCells()), -1);
  VisitCounts.resize(static_cast<size_t>(T.numCells()), 0);
  ObstacleMask.resize(static_cast<size_t>(T.numCells()), 0);
  ClaimMinId.resize(static_cast<size_t>(T.numCells()), -1);
}

void World::reset(const Genome &G, const std::vector<Placement> &Placements,
                  const SimOptions &Opts) {
  reset(G, G, GenomePolicy::Single, Placements, Opts);
}

void World::reset(const Genome &A, const Genome &B, GenomePolicy NewPolicy,
                  const std::vector<Placement> &Placements,
                  const SimOptions &Opts) {
  assert(!Placements.empty() && "need at least one agent");
  assert(Placements.size() <= static_cast<size_t>(T.numCells()) &&
         "more agents than cells");
  assert(A.dims() == B.dims() && "mixed genome dimensions in one world");
  assert(Opts.Start.M != StartStates::Mode::Uniform ||
         Opts.Start.UniformValue < A.dims().States);
  GenomeA = A;
  GenomeB = B;
  Policy = NewPolicy;
  WasReset = true;
  Options = Opts;
  Time = 0;

  FaultsActive = Options.Faults.any();
  FaultRng = Rng(Options.Faults.Seed);
  FaultCounters = FaultStats();

  std::fill(ObstacleMask.begin(), ObstacleMask.end(), 0);
  for (Coord Obstacle : Options.Obstacles)
    ObstacleMask[static_cast<size_t>(T.indexOf(Obstacle))] = 1;

  std::fill(Colors.begin(), Colors.end(), 0);
  std::fill(Occupancy.begin(), Occupancy.end(), -1);
  std::fill(VisitCounts.begin(), VisitCounts.end(), 0);
  std::fill(ClaimMinId.begin(), ClaimMinId.end(), -1);
  TouchedCells.clear();

  size_t K = Placements.size();
  Agents.assign(K, AgentState());
  CommNext.assign(K, BitVector(K));
  Decisions.assign(K, Decision());
  NumAlive = static_cast<int>(K);
  SurvivorMask = BitVector(K);
  SurvivorMask.setAll();
  Stalled.assign(K, 0);
  for (size_t Id = 0; Id != K; ++Id) {
    const Placement &P = Placements[Id];
    AgentState &Agent = Agents[Id];
    Agent.Cell = T.indexOf(P.Pos);
    assert(P.Direction < T.degree() && "placement direction out of range");
    Agent.Direction = P.Direction;
    Agent.ControlState = Options.Start.stateFor(static_cast<int>(Id));
    Agent.Comm = BitVector(K);
    Agent.Comm.set(Id);
    Agent.Informed = (K == 1);
    assert(Occupancy[static_cast<size_t>(Agent.Cell)] < 0 &&
           "two agents placed on one cell");
    assert(!ObstacleMask[static_cast<size_t>(Agent.Cell)] &&
           "agent placed on an obstacle");
    Occupancy[static_cast<size_t>(Agent.Cell)] = static_cast<int16_t>(Id);
    ++VisitCounts[static_cast<size_t>(Agent.Cell)];
  }
  NumInformed = (K == 1) ? 1 : 0;
}

void World::injectFaults() {
  // Fault processes fire at the start of every iteration in a fixed draw
  // order (deaths, stalls, colour flips; link drops are drawn inside the
  // exchange), so one fault seed reproduces one faulty trajectory exactly.
  // Processes with probability zero consume no draws.
  const FaultModel &F = Options.Faults;
  size_t K = Agents.size();
  if (F.DeathProbability > 0.0) {
    for (size_t Id = 0; Id != K; ++Id) {
      AgentState &A = Agents[Id];
      if (!A.Alive || !FaultRng.bernoulli(F.DeathProbability))
        continue;
      A.Alive = false;
      A.Informed = false;
      Occupancy[static_cast<size_t>(A.Cell)] = -1; // Corpses free the cell.
      SurvivorMask.reset(Id);
      --NumAlive;
      ++FaultCounters.Deaths;
    }
  }
  if (F.StallProbability > 0.0) {
    for (size_t Id = 0; Id != K; ++Id) {
      Stalled[Id] =
          Agents[Id].Alive && FaultRng.bernoulli(F.StallProbability) ? 1 : 0;
      FaultCounters.Stalls += Stalled[Id];
    }
  }
  if (F.ColorFlipProbability > 0.0 && Options.ColorsEnabled) {
    int NumColors = GenomeA.dims().Colors;
    for (size_t Cell = 0, E = Colors.size(); Cell != E; ++Cell) {
      if (!FaultRng.bernoulli(F.ColorFlipProbability))
        continue;
      // Uniform over the NumColors - 1 *other* values: a corrupted cell
      // never keeps its colour.
      int Replacement = static_cast<int>(
          FaultRng.uniformInt(static_cast<uint64_t>(NumColors - 1)));
      if (Replacement >= Colors[Cell])
        ++Replacement;
      Colors[Cell] = static_cast<uint8_t>(Replacement);
      ++FaultCounters.ColorFlips;
    }
  }
}

Expected<bool>
World::validatePlacements(const Torus &T,
                          const std::vector<Placement> &Placements,
                          const SimOptions &Options) {
  if (Options.MaxSteps < 0)
    return makeError(formatString("MaxSteps must be non-negative, got %d",
                                  Options.MaxSteps));
  if (Placements.empty())
    return makeError("no agents placed");
  if (Placements.size() > static_cast<size_t>(T.numCells()))
    return makeError(
        formatString("%zu agents but the field has only %d cells",
                     Placements.size(), T.numCells()));
  std::vector<uint8_t> Obstacle(static_cast<size_t>(T.numCells()), 0);
  for (Coord C : Options.Obstacles)
    Obstacle[static_cast<size_t>(T.indexOf(C))] = 1;
  std::vector<uint8_t> Occupied(static_cast<size_t>(T.numCells()), 0);
  for (size_t Id = 0; Id != Placements.size(); ++Id) {
    const Placement &P = Placements[Id];
    if (P.Direction >= T.degree())
      return makeError(formatString(
          "agent %zu: direction %d out of range (grid degree %d)", Id,
          P.Direction, T.degree()));
    size_t Cell = static_cast<size_t>(T.indexOf(P.Pos));
    if (Obstacle[Cell])
      return makeError(formatString("agent %zu placed on obstacle (%d, %d)",
                                    Id, P.Pos.X, P.Pos.Y));
    if (Occupied[Cell])
      return makeError(formatString(
          "agents share cell (%d, %d) — placements must be distinct",
          P.Pos.X, P.Pos.Y));
    Occupied[Cell] = 1;
  }
  return true;
}

void World::exchangeCommunication() {
  // Synchronous OR with the von-Neumann neighbourhood: new vectors are
  // computed from the pre-step vectors only, then swapped in. With borders
  // enabled, adjacency across the wrap seam does not exist. A dropped link
  // takes exactly the Bordered path: the read is skipped for this step.
  int Degree = T.degree();
  size_t K = Agents.size();
  const FaultModel &F = Options.Faults;
  bool DropsActive = FaultsActive && F.LinkDropProbability > 0.0;
  for (size_t Id = 0; Id != K; ++Id) {
    AgentState &A = Agents[Id];
    if (!A.Alive)
      continue; // Dead agents neither read nor occupy a cell.
    BitVector &Next = CommNext[Id];
    Next = A.Comm;
    const int32_t *Neighbors = T.neighbors(A.Cell);
    for (int D = 0; D != Degree; ++D) {
      if (Options.Bordered &&
          T.crossesBoundary(A.Cell, static_cast<uint8_t>(D)))
        continue;
      if (DropsActive &&
          (!F.LinkFilter ||
           F.LinkFilter(T, A.Cell, static_cast<uint8_t>(D))) &&
          FaultRng.bernoulli(F.LinkDropProbability)) {
        ++FaultCounters.DroppedLinks;
        continue;
      }
      int NeighborAgent = Occupancy[static_cast<size_t>(Neighbors[D])];
      if (NeighborAgent >= 0)
        Next.orWith(Agents[static_cast<size_t>(NeighborAgent)].Comm);
    }
  }
  NumInformed = 0;
  bool AllAlive = NumAlive == static_cast<int>(K);
  for (size_t Id = 0; Id != K; ++Id) {
    AgentState &A = Agents[Id];
    if (!A.Alive)
      continue; // Frozen vector; dead agents never count as informed.
    std::swap(A.Comm, CommNext[Id]);
    // Informed = knows every survivor. With everyone alive that is the
    // paper's all-ones test (kept on its own path: it is the hot case).
    A.Informed = AllAlive ? A.Comm.all() : A.Comm.contains(SurvivorMask);
    if (A.Informed)
      ++NumInformed;
  }
}

void World::applyActions() {
  assert(WasReset && "world not reset");
  size_t K = Agents.size();

  // Pass 1a: per-agent observations and move requests. A request is the
  // FSM's move output under the hypothesis blocked = 0; it is what the
  // cell's arbitration logic sees (Sect. 3).
  TouchedCells.clear();
  for (size_t Id = 0; Id != K; ++Id) {
    AgentState &A = Agents[Id];
    Decision &D = Decisions[Id];
    // Dead and stalled agents take no action and issue no claims; a
    // stalled agent still occupies its cell (pass 1b sees it as a plain
    // obstacle-like occupant).
    D.Skip = FaultsActive && (!A.Alive || Stalled[Id]);
    if (D.Skip)
      continue;
    D.FrontCell = T.neighborIndex(A.Cell, A.Direction);
    int Color = Colors[static_cast<size_t>(A.Cell)];
    // In bordered mode the cell beyond the seam does not exist; its colour
    // reads as 0 rather than the wrapped cell's value.
    int FrontColor =
        (Options.Bordered && T.crossesBoundary(A.Cell, A.Direction))
            ? 0
            : Colors[static_cast<size_t>(D.FrontCell)];
    int FreeInput =
        GenomeA.dims().makeInput(/*Blocked=*/false, Color, FrontColor);
    bool Requests = activeGenome(static_cast<int>(Id))
                        .entry(FreeInput, A.ControlState)
                        .Act.Move ||
                    Options.Arbitration == ArbitrationMode::GazePriority;
    if (Requests) {
      int32_t &Claim = ClaimMinId[static_cast<size_t>(D.FrontCell)];
      if (Claim < 0) {
        Claim = static_cast<int32_t>(Id);
        TouchedCells.push_back(D.FrontCell);
      } else {
        Claim = std::min(Claim, static_cast<int32_t>(Id));
      }
    }
    // Stash the two colour bits; blocked is patched in below.
    D.Input = static_cast<uint8_t>(FreeInput);
  }

  // Pass 1b: arbitration. canmove = front cell enterable (agent-free, not
  // an obstacle, not across a border seam) AND no other requester with a
  // lower ID claims the same cell.
  for (size_t Id = 0; Id != K; ++Id) {
    Decision &D = Decisions[Id];
    const AgentState &A = Agents[Id];
    if (D.Skip)
      continue;
    bool FrontOccupied =
        Occupancy[static_cast<size_t>(D.FrontCell)] >= 0 ||
        ObstacleMask[static_cast<size_t>(D.FrontCell)] != 0 ||
        (Options.Bordered && T.crossesBoundary(A.Cell, A.Direction));
    int32_t Claim = ClaimMinId[static_cast<size_t>(D.FrontCell)];
    bool LosesConflict = Claim >= 0 && Claim < static_cast<int32_t>(Id);
    D.CanMove = !FrontOccupied && !LosesConflict;
    if (!D.CanMove)
      D.Input = static_cast<uint8_t>(D.Input | 1); // blocked bit.
  }
  for (int32_t Cell : TouchedCells)
    ClaimMinId[static_cast<size_t>(Cell)] = -1;

  // Pass 2: apply (setcolor, turn, move) simultaneously. All inputs were
  // read in pass 1, so the write order is immaterial: colour writes go to
  // distinct cells (one agent per cell) and movers' targets are distinct
  // and empty pre-step.
  for (size_t Id = 0; Id != K; ++Id) {
    AgentState &A = Agents[Id];
    const Decision &D = Decisions[Id];
    if (D.Skip)
      continue;
    const GenomeEntry &E =
        activeGenome(static_cast<int>(Id)).entry(D.Input, A.ControlState);
    if (Options.ColorsEnabled)
      Colors[static_cast<size_t>(A.Cell)] = E.Act.SetColor;
    A.ControlState = E.NextState;
    A.Direction = applyTurn(T.kind(), A.Direction, E.Act.TurnCode);
    if (E.Act.Move && D.CanMove) {
      assert(Occupancy[static_cast<size_t>(D.FrontCell)] < 0 &&
             "arbitration let two agents collide");
      Occupancy[static_cast<size_t>(A.Cell)] = -1;
      A.Cell = D.FrontCell;
      Occupancy[static_cast<size_t>(A.Cell)] = static_cast<int16_t>(Id);
      ++VisitCounts[static_cast<size_t>(A.Cell)];
    }
  }
}

World::Status World::step() {
  return stepWithObserver({});
}

World::Status
World::stepWithObserver(const std::function<void(const World &, int)> &OnStep) {
  if (FaultsActive)
    injectFaults();
  exchangeCommunication();
  bool Solved = NumAlive > 0 && NumInformed == NumAlive;
  if (OnStep)
    OnStep(*this, Time);
  if (Solved) {
    // time() stays at the index of the solving iteration: t_comm.
    return Status::Solved;
  }
  applyActions();
  ++Time;
  return Status::Running;
}

SimResult World::run() {
  return run(std::function<void(const World &, int)>());
}

SimResult World::run(const std::function<void(const World &, int)> &OnStep) {
  assert(WasReset && "world not reset");
  SimResult Result;
  Result.NumAgents = numAgents();
  auto Finish = [&](bool Success) {
    Result.Success = Success;
    Result.TComm = Success ? Time : -1;
    Result.InformedAgents = NumInformed;
    Result.SurvivingAgents = NumAlive;
    Result.InformedFraction =
        NumAlive > 0 ? static_cast<double>(NumInformed) /
                           static_cast<double>(NumAlive)
                     : 0.0;
    Result.Faults = FaultCounters;
    return Result;
  };
  // < (not !=) so a negative MaxSteps terminates immediately instead of
  // counting through signed overflow; validatePlacements rejects it with a
  // proper error for CLI-supplied configurations.
  for (int I = 0; I < Options.MaxSteps; ++I) {
    if (stepWithObserver(OnStep) == Status::Solved)
      return Finish(true);
    // Extinction: with no survivors the task can never be solved.
    if (FaultsActive && NumAlive == 0)
      break;
  }
  return Finish(false);
}
