//===- sim/World.cpp - Synchronous CA multi-agent engine ------------------===//

#include "sim/World.h"

#include <algorithm>

using namespace ca2a;

World::World(const Torus &T) : T(T) {
  Colors.resize(static_cast<size_t>(T.numCells()), 0);
  Occupancy.resize(static_cast<size_t>(T.numCells()), -1);
  VisitCounts.resize(static_cast<size_t>(T.numCells()), 0);
  ObstacleMask.resize(static_cast<size_t>(T.numCells()), 0);
  ClaimMinId.resize(static_cast<size_t>(T.numCells()), -1);
}

void World::reset(const Genome &G, const std::vector<Placement> &Placements,
                  const SimOptions &Opts) {
  reset(G, G, GenomePolicy::Single, Placements, Opts);
}

void World::reset(const Genome &A, const Genome &B, GenomePolicy NewPolicy,
                  const std::vector<Placement> &Placements,
                  const SimOptions &Opts) {
  assert(!Placements.empty() && "need at least one agent");
  assert(Placements.size() <= static_cast<size_t>(T.numCells()) &&
         "more agents than cells");
  assert(A.dims() == B.dims() && "mixed genome dimensions in one world");
  assert(Opts.Start.M != StartStates::Mode::Uniform ||
         Opts.Start.UniformValue < A.dims().States);
  GenomeA = A;
  GenomeB = B;
  Policy = NewPolicy;
  WasReset = true;
  Options = Opts;
  Time = 0;

  std::fill(ObstacleMask.begin(), ObstacleMask.end(), 0);
  for (Coord Obstacle : Options.Obstacles)
    ObstacleMask[static_cast<size_t>(T.indexOf(Obstacle))] = 1;

  std::fill(Colors.begin(), Colors.end(), 0);
  std::fill(Occupancy.begin(), Occupancy.end(), -1);
  std::fill(VisitCounts.begin(), VisitCounts.end(), 0);
  std::fill(ClaimMinId.begin(), ClaimMinId.end(), -1);
  TouchedCells.clear();

  size_t K = Placements.size();
  Agents.assign(K, AgentState());
  CommNext.assign(K, BitVector(K));
  Decisions.assign(K, Decision());
  for (size_t Id = 0; Id != K; ++Id) {
    const Placement &P = Placements[Id];
    AgentState &Agent = Agents[Id];
    Agent.Cell = T.indexOf(P.Pos);
    assert(P.Direction < T.degree() && "placement direction out of range");
    Agent.Direction = P.Direction;
    Agent.ControlState = Options.Start.stateFor(static_cast<int>(Id));
    Agent.Comm = BitVector(K);
    Agent.Comm.set(Id);
    Agent.Informed = (K == 1);
    assert(Occupancy[static_cast<size_t>(Agent.Cell)] < 0 &&
           "two agents placed on one cell");
    assert(!ObstacleMask[static_cast<size_t>(Agent.Cell)] &&
           "agent placed on an obstacle");
    Occupancy[static_cast<size_t>(Agent.Cell)] = static_cast<int16_t>(Id);
    ++VisitCounts[static_cast<size_t>(Agent.Cell)];
  }
  NumInformed = (K == 1) ? 1 : 0;
}

void World::exchangeCommunication() {
  // Synchronous OR with the von-Neumann neighbourhood: new vectors are
  // computed from the pre-step vectors only, then swapped in. With borders
  // enabled, adjacency across the wrap seam does not exist.
  int Degree = T.degree();
  size_t K = Agents.size();
  for (size_t Id = 0; Id != K; ++Id) {
    AgentState &A = Agents[Id];
    BitVector &Next = CommNext[Id];
    Next = A.Comm;
    const int32_t *Neighbors = T.neighbors(A.Cell);
    for (int D = 0; D != Degree; ++D) {
      if (Options.Bordered &&
          T.crossesBoundary(A.Cell, static_cast<uint8_t>(D)))
        continue;
      int NeighborAgent = Occupancy[static_cast<size_t>(Neighbors[D])];
      if (NeighborAgent >= 0)
        Next.orWith(Agents[static_cast<size_t>(NeighborAgent)].Comm);
    }
  }
  NumInformed = 0;
  for (size_t Id = 0; Id != K; ++Id) {
    AgentState &A = Agents[Id];
    std::swap(A.Comm, CommNext[Id]);
    A.Informed = A.Comm.all();
    if (A.Informed)
      ++NumInformed;
  }
}

void World::applyActions() {
  assert(WasReset && "world not reset");
  size_t K = Agents.size();

  // Pass 1a: per-agent observations and move requests. A request is the
  // FSM's move output under the hypothesis blocked = 0; it is what the
  // cell's arbitration logic sees (Sect. 3).
  TouchedCells.clear();
  for (size_t Id = 0; Id != K; ++Id) {
    AgentState &A = Agents[Id];
    Decision &D = Decisions[Id];
    D.FrontCell = T.neighborIndex(A.Cell, A.Direction);
    int Color = Colors[static_cast<size_t>(A.Cell)];
    // In bordered mode the cell beyond the seam does not exist; its colour
    // reads as 0 rather than the wrapped cell's value.
    int FrontColor =
        (Options.Bordered && T.crossesBoundary(A.Cell, A.Direction))
            ? 0
            : Colors[static_cast<size_t>(D.FrontCell)];
    int FreeInput =
        GenomeA.dims().makeInput(/*Blocked=*/false, Color, FrontColor);
    bool Requests = activeGenome(static_cast<int>(Id))
                        .entry(FreeInput, A.ControlState)
                        .Act.Move ||
                    Options.Arbitration == ArbitrationMode::GazePriority;
    if (Requests) {
      int32_t &Claim = ClaimMinId[static_cast<size_t>(D.FrontCell)];
      if (Claim < 0) {
        Claim = static_cast<int32_t>(Id);
        TouchedCells.push_back(D.FrontCell);
      } else {
        Claim = std::min(Claim, static_cast<int32_t>(Id));
      }
    }
    // Stash the two colour bits; blocked is patched in below.
    D.Input = static_cast<uint8_t>(FreeInput);
  }

  // Pass 1b: arbitration. canmove = front cell enterable (agent-free, not
  // an obstacle, not across a border seam) AND no other requester with a
  // lower ID claims the same cell.
  for (size_t Id = 0; Id != K; ++Id) {
    Decision &D = Decisions[Id];
    const AgentState &A = Agents[Id];
    bool FrontOccupied =
        Occupancy[static_cast<size_t>(D.FrontCell)] >= 0 ||
        ObstacleMask[static_cast<size_t>(D.FrontCell)] != 0 ||
        (Options.Bordered && T.crossesBoundary(A.Cell, A.Direction));
    int32_t Claim = ClaimMinId[static_cast<size_t>(D.FrontCell)];
    bool LosesConflict = Claim >= 0 && Claim < static_cast<int32_t>(Id);
    D.CanMove = !FrontOccupied && !LosesConflict;
    if (!D.CanMove)
      D.Input = static_cast<uint8_t>(D.Input | 1); // blocked bit.
  }
  for (int32_t Cell : TouchedCells)
    ClaimMinId[static_cast<size_t>(Cell)] = -1;

  // Pass 2: apply (setcolor, turn, move) simultaneously. All inputs were
  // read in pass 1, so the write order is immaterial: colour writes go to
  // distinct cells (one agent per cell) and movers' targets are distinct
  // and empty pre-step.
  for (size_t Id = 0; Id != K; ++Id) {
    AgentState &A = Agents[Id];
    const Decision &D = Decisions[Id];
    const GenomeEntry &E =
        activeGenome(static_cast<int>(Id)).entry(D.Input, A.ControlState);
    if (Options.ColorsEnabled)
      Colors[static_cast<size_t>(A.Cell)] = E.Act.SetColor;
    A.ControlState = E.NextState;
    A.Direction = applyTurn(T.kind(), A.Direction, E.Act.TurnCode);
    if (E.Act.Move && D.CanMove) {
      assert(Occupancy[static_cast<size_t>(D.FrontCell)] < 0 &&
             "arbitration let two agents collide");
      Occupancy[static_cast<size_t>(A.Cell)] = -1;
      A.Cell = D.FrontCell;
      Occupancy[static_cast<size_t>(A.Cell)] = static_cast<int16_t>(Id);
      ++VisitCounts[static_cast<size_t>(A.Cell)];
    }
  }
}

World::Status World::step() {
  return stepWithObserver({});
}

World::Status
World::stepWithObserver(const std::function<void(const World &, int)> &OnStep) {
  exchangeCommunication();
  bool Solved = NumInformed == numAgents();
  if (OnStep)
    OnStep(*this, Time);
  if (Solved) {
    // time() stays at the index of the solving iteration: t_comm.
    return Status::Solved;
  }
  applyActions();
  ++Time;
  return Status::Running;
}

SimResult World::run() {
  return run(std::function<void(const World &, int)>());
}

SimResult World::run(const std::function<void(const World &, int)> &OnStep) {
  assert(WasReset && "world not reset");
  SimResult Result;
  Result.NumAgents = numAgents();
  for (int I = 0; I != Options.MaxSteps; ++I) {
    if (stepWithObserver(OnStep) == Status::Solved) {
      Result.Success = true;
      Result.TComm = Time;
      Result.InformedAgents = NumInformed;
      return Result;
    }
  }
  Result.Success = false;
  Result.TComm = -1;
  Result.InformedAgents = NumInformed;
  return Result;
}
