//===- sim/Fault.cpp - Fault injection for the CA engine ------------------===//

#include "sim/Fault.h"

#include "support/StringUtils.h"

namespace ca2a {

std::string describeFaultModel(const FaultModel &F) {
  if (!F.any())
    return "fault-free";
  std::string Out;
  auto Append = [&Out](const char *Name, double P) {
    if (P <= 0.0)
      return;
    if (!Out.empty())
      Out += ", ";
    Out += formatString("%s %.4g", Name, P);
  };
  Append("stall", F.StallProbability);
  Append("death", F.DeathProbability);
  Append("drop", F.LinkDropProbability);
  Append("flip", F.ColorFlipProbability);
  Out += formatString(" (seed %llu)", static_cast<unsigned long long>(F.Seed));
  return Out;
}

std::string describeFaultStats(const FaultStats &S) {
  return formatString("stalls %lld, deaths %lld, drops %lld, flips %lld",
                      static_cast<long long>(S.Stalls),
                      static_cast<long long>(S.Deaths),
                      static_cast<long long>(S.DroppedLinks),
                      static_cast<long long>(S.ColorFlips));
}

} // namespace ca2a
