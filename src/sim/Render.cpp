//===- sim/Render.cpp - ASCII rendering of the CA field -------------------===//

#include "sim/Render.h"

#include "support/StringUtils.h"

using namespace ca2a;

std::string ca2a::renderAgentLayer(const World &W) {
  const Torus &T = W.torus();
  int M = T.sideLength();
  std::string Out;
  for (int Y = M - 1; Y >= 0; --Y) {
    for (int X = 0; X != M; ++X) {
      int Cell = T.indexOf(Coord{X, Y});
      int Id = W.agentAt(Cell);
      if (X != 0)
        Out += ' ';
      if (W.obstacleAt(Cell)) {
        Out += " #";
        continue;
      }
      if (Id < 0) {
        Out += " .";
        continue;
      }
      Out += directionGlyph(T.kind(), W.agent(Id).Direction);
      Out += static_cast<char>('0' + Id % 10);
    }
    Out += '\n';
  }
  return Out;
}

std::string ca2a::renderColorLayer(const World &W) {
  const Torus &T = W.torus();
  int M = T.sideLength();
  std::string Out;
  for (int Y = M - 1; Y >= 0; --Y) {
    for (int X = 0; X != M; ++X) {
      if (X != 0)
        Out += ' ';
      int Value = W.colorValueAt(T.indexOf(Coord{X, Y}));
      Out += Value == 0 ? '.' : static_cast<char>('0' + Value);
    }
    Out += '\n';
  }
  return Out;
}

std::string ca2a::renderVisitedLayer(const World &W) {
  const Torus &T = W.torus();
  int M = T.sideLength();
  std::string Out;
  for (int Y = M - 1; Y >= 0; --Y) {
    for (int X = 0; X != M; ++X) {
      if (X != 0)
        Out += ' ';
      int Count = W.visitCount(T.indexOf(Coord{X, Y}));
      if (Count == 0)
        Out += '.';
      else if (Count <= 9)
        Out += static_cast<char>('0' + Count);
      else
        Out += '*';
    }
    Out += '\n';
  }
  return Out;
}

std::string ca2a::renderPanels(const World &W, const std::string &Title) {
  std::string Out = Title + "\n";
  Out += "agents:\n" + renderAgentLayer(W);
  Out += "colors:\n" + renderColorLayer(W);
  Out += "visited:\n" + renderVisitedLayer(W);
  return Out;
}
