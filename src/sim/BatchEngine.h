//===- sim/BatchEngine.h - Batched SoA CA simulation engine -----*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structure-of-arrays reimplementation of the World step loop, built to
/// evaluate thousands of independent replicas per call — the GA fitness
/// loop, the reliability filter, and every density sweep are embarrassingly
/// parallel over (genome, field) pairs, and World's pointer-chasing
/// array-of-structs layout plus per-replica allocation dominate their
/// wall-clock.
///
/// Four ideas, all behaviour-preserving:
///
///   1. Communication vectors live in one contiguous buffer of word-packed
///      rows (k bits per agent, rounded to uint64_t words), so the
///      neighbour-OR exchange is straight-line word ops with no per-agent
///      heap indirection.
///   2. Each distinct genome is compiled exactly once per run into a flat
///      transition table (input x state -> packed {nextstate, move,
///      setcolor, turn}) held in a per-run compile cache and shared
///      read-only by every replica and worker; the turn algebra is a
///      direction x turn-code map, so the action phase is table lookups
///      only.
///   3. Every worker owns a small arena of ReplicaWorkspaces — all scratch
///      a replica needs, allocated once and reset between replicas, so
///      steady-state simulation performs zero heap allocations (the run
///      stats carry an instrumented allocation counter that proves it).
///      Fast-path replicas in one arena advance in lockstep, interleaving
///      independent per-step work to fill the pipeline stalls a single
///      replica's dependence chains leave open.
///   4. Workers pull replicas from one shared atomic counter (work
///      stealing), eliminating the tail idle time of fixed chunking; every
///      replica owns its seeded fault stream and writes one result slot
///      (exactly as in World), so results are bit-identical regardless of
///      the worker count or completion order.
///
/// The reference World stays authoritative: BatchEngine reproduces its
/// SimResult and final field bit-for-bit across fault injection, both
/// arbitration modes, borders, obstacles and all genome policies
/// (tests/sim/BatchEngineDiffTest.cpp enforces this differentially).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_BATCHENGINE_H
#define CA2A_SIM_BATCHENGINE_H

#include "sim/World.h"
#include "sim/simd/Backend.h"
#include "support/Supervisor.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace ca2a {

/// Which implementation executes a replica loop. The reference World is
/// the semantics oracle; the batch engine is the throughput backend.
enum class EngineKind : uint8_t {
  Reference, ///< One World per replica (authoritative).
  Batch,     ///< BatchEngine (bit-identical, faster).
};

/// "reference" / "batch".
const char *engineKindName(EngineKind K);

/// Parses "reference"/"ref"/"world" or "batch" (case-insensitive).
bool parseEngineKind(const std::string &Text, EngineKind &K);

/// One replica: which FSM(s) run on which field under which options.
///
/// All pointers are borrowed and must stay valid (and unmodified) for the
/// duration of the run() call — replicas in a batch typically share one
/// genome and one SimOptions, and copying either per replica would cost
/// more than the simulation itself.
struct BatchReplica {
  const Genome *A = nullptr; ///< Required.
  const Genome *B = nullptr; ///< Second FSM; null uses A (policy Single).
  GenomePolicy Policy = GenomePolicy::Single;
  const std::vector<Placement> *Placements = nullptr; ///< Required.
  const SimOptions *Options = nullptr;                ///< Required.
};

/// Final per-agent state of a finished replica (introspection parity with
/// World::agent, used by the differential tests).
struct ReplicaAgentState {
  int32_t Cell = 0;
  uint8_t Direction = 0;
  uint8_t ControlState = 0;
  bool Informed = false;
  bool Alive = true;
  BitVector Comm;
};

/// Final field of a finished replica (introspection parity with World).
struct ReplicaFinalState {
  std::vector<uint8_t> Colors;
  std::vector<int16_t> Occupancy;
  std::vector<int32_t> VisitCounts;
  std::vector<ReplicaAgentState> Agents;
};

/// Read-only view of one replica's state, passed to the step observer
/// right after the exchange/success check of an iteration (the same
/// observation point as World::stepWithObserver). Pointers are valid only
/// during the callback.
struct BatchStepView {
  int Replica = 0; ///< Index into the run() replica vector.
  int Time = 0;    ///< Iteration index (t_comm when solved).
  int NumAgents = 0;
  int NumCells = 0;
  int WordsPerAgent = 0;
  const int32_t *Cells = nullptr;        ///< Per agent (stale when dead).
  const uint8_t *Directions = nullptr;   ///< Per agent.
  const uint8_t *ControlStates = nullptr;///< Per agent.
  const uint8_t *Alive = nullptr;        ///< Per agent, 0/1.
  const uint8_t *Informed = nullptr;     ///< Per agent, 0/1.
  const uint64_t *Comm = nullptr;        ///< Word-packed rows, one per agent.
  const uint8_t *Colors = nullptr;       ///< Per cell.
  const int16_t *Occupancy = nullptr;    ///< Agent id per cell, -1 empty.
  int NumInformed = 0;
  int NumSurvivors = 0;

  bool commBit(int Agent, int Bit) const {
    // All index arithmetic in size_t before the add: on multi-word rows
    // (k > 64) a mixed int product would be computed in int first and
    // only then widened.
    return (Comm[static_cast<size_t>(Agent) *
                     static_cast<size_t>(WordsPerAgent) +
                 static_cast<size_t>(Bit) / 64] >>
            (static_cast<size_t>(Bit) % 64)) &
           1;
  }
};

/// Instrumentation of one run() call, filled when BatchRunOptions::Stats
/// points at an instance. Counting costs nothing measurable: the hot loop
/// itself is untouched, counters tick per replica or per buffer growth.
///
/// Ordering contract of the parallel fan-out (checked under TSan by
/// tests/support/RaceStressTest.cpp; scripts/sanitize.sh tsan):
///
///   * The work-stealing cursor and the skipped-replica counter are the
///     only cross-worker atomics, and both use memory_order_relaxed:
///     fetch_add on the cursor must only hand out each index exactly once
///     (atomicity suffices — no payload is published through it), and the
///     skip counter is a pure tally.
///   * Everything else a worker writes — result slots, per-worker stats
///     slots, workspace arenas — is either indexed by a claimed replica
///     (so exactly one worker touches it) or owned by the worker outright.
///     No two threads ever write the same location, so no ordering is
///     needed *between* workers.
///   * The caller reads those writes only after the fan-out joins; the
///     ThreadPool's mutex/condvar handshake in wait() (and the pool
///     destructor's join) provides the release/acquire edge that makes
///     every worker write visible. Relaxed atomics are therefore safe to
///     read non-atomically-reduced after run() returns.
///   * The user hooks (ShouldSkip/OnResult) run concurrently from worker
///     threads when NumWorkers > 1; the engine adds no synchronisation
///     around them — callers own their state's locking, as EvalScheduler
///     does with one mutex over its progress table.
///
/// This contract is machine-checked: the atomic-ordering rule of
/// tools/verify/ca2a_verify.py requires every atomic operation in the
/// tree to name an explicit memory_order, and flags explicit seq_cst too
/// — an op that genuinely needs more than relaxed here would contradict
/// the bullets above and must carry a written justification via
/// `verify-lint: allow(atomic-ordering) <reason>`.
struct BatchRunStats {
  /// Worker threads actually used: the requested count clamped to the
  /// replica count, forced to 1 by a step observer.
  size_t WorkersUsed = 0;
  uint64_t ReplicasSimulated = 0;
  uint64_t ReplicasSkipped = 0; ///< Replicas vetoed by ShouldSkip.
  /// Supervision counters (nonzero only when infrastructure faults fire —
  /// in practice the chaos layer; see support/Chaos.h). A retried replica
  /// recomputes the identical result, so TaskRetries > 0 never changes
  /// any output; a replica that fails every attempt is abandoned (default
  /// SimResult in its slot, OnFailure notified) and counted here.
  uint64_t TaskRetries = 0;
  uint64_t ReplicasFailed = 0;
  /// Genome-compile cache: each replica resolves two table slots (A and
  /// B); a miss compiles a distinct genome once, every other resolution
  /// is served from the per-run cache.
  uint64_t CompileMisses = 0;
  uint64_t CompileHits = 0;
  /// Workspace-arena buffer growths (heap reallocations) over the whole
  /// run, and the subset that happened after the owning workspace slot
  /// had already finished its first replica. A homogeneous batch (same
  /// agent count everywhere, the GA's shape) must report
  /// SteadyAllocations == 0: after warm-up the hot path never touches
  /// the heap. (FinalStates capture is diagnostic-only and not counted.)
  uint64_t Allocations = 0;
  uint64_t SteadyAllocations = 0;
  /// Per-worker replica counts and busy time (seconds inside the worker
  /// loop), indexed by worker. Utilisation close to 1 means work stealing
  /// left no tail idle time.
  std::vector<uint64_t> ReplicasPerWorker;
  std::vector<double> WorkerBusySeconds;
  /// The concrete SIMD backend this run's fast path executed (the
  /// resolution of BatchRunOptions::Backend against CA2A_FORCE_BACKEND and
  /// the host CPU — see sim/simd/Backend.h). Every backend is
  /// bit-identical, so this is diagnostic only.
  SimdBackend BackendUsed = SimdBackend::Scalar;

  // Replica-major slab counters, nonzero only under the rmaj64 backend
  // (see sim/simd/ReplicaSlab.h). A "slab" is one master trajectory shared
  // by up to 64 clone-modulo-faults lanes; occupancy is the dedup factor
  // the workload actually offered. LanesRetiredEarly counts lanes that
  // left lockstep because a fault fired (finished on the general path from
  // a mid-run snapshot); LanesConverged counts lanes that rode their
  // master to completion. Retired + converged == enrolled lanes, and every
  // lane's result is bit-identical to a solo run either way.
  uint64_t SlabsFormed = 0;
  uint64_t SlabLanesEnrolled = 0;
  uint64_t LanesRetiredEarly = 0;
  uint64_t LanesConverged = 0;

  /// Mean lanes per slab — 1.0 means the batch had no clone structure to
  /// exploit (e.g. GA generations after (genome, field) dedup) and rmaj64
  /// ran at sliced64 parity; 64.0 is the replica-averaging ideal.
  double slabOccupancy() const {
    return SlabsFormed ? static_cast<double>(SlabLanesEnrolled) /
                             static_cast<double>(SlabsFormed)
                       : 0.0;
  }

  double compileHitRate() const {
    uint64_t Total = CompileHits + CompileMisses;
    return Total ? static_cast<double>(CompileHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }
  /// Mean busy share of the slowest worker's span: 1.0 = perfectly
  /// balanced, lower = workers idled behind a straggler.
  double workerUtilization() const {
    if (WorkerBusySeconds.empty())
      return 1.0;
    double Max = 0.0, Sum = 0.0;
    for (double S : WorkerBusySeconds) {
      Max = S > Max ? S : Max;
      Sum += S;
    }
    return Max > 0.0
               ? Sum / (Max * static_cast<double>(WorkerBusySeconds.size()))
               : 1.0;
  }
};

/// Execution knobs of one batch run.
struct BatchRunOptions {
  /// Worker threads for the replica fan-out; <= 1 runs inline. Results are
  /// bit-identical for every value (replicas are independent and each owns
  /// its RNG streams).
  size_t NumWorkers = 1;
  /// When non-null, resized to the replica count and filled with each
  /// replica's final field (for differential testing; costs a copy).
  std::vector<ReplicaFinalState> *FinalStates = nullptr;
  /// Per-iteration observer. Setting it forces inline sequential execution
  /// (replica order, NumWorkers ignored) so callbacks never run
  /// concurrently.
  std::function<void(const BatchStepView &)> OnStep;

  // Partial-batch cancellation, used by ga/EvalScheduler's bound-based
  // early abort. Both hooks may be invoked concurrently from worker
  // threads when NumWorkers > 1; callers own their synchronisation.

  /// Polled right before each replica is simulated, and once more when a
  /// pipelined (lockstep) replica completes — a veto that arrived while
  /// the replica was in flight discards its result. Either way a vetoed
  /// replica's result slot keeps a default-constructed SimResult
  /// (recognisable by NumAgents == 0, which no simulated replica can
  /// produce), and OnResult is not invoked for it.
  std::function<bool(int Replica)> ShouldSkip;

  /// Invoked with each replica's result as soon as that replica finishes
  /// (completion order, not replica order). Lets a scheduler accumulate
  /// partial sums and flip ShouldSkip for the batch's remaining replicas.
  std::function<void(int Replica, const SimResult &)> OnResult;

  /// When non-null, filled with this run's instrumentation (workers used,
  /// compile-cache hits, workspace allocations, per-worker load).
  BatchRunStats *Stats = nullptr;

  /// Which SIMD lane kernel steps the fast-path replicas. Auto picks the
  /// fastest backend the host supports; the CA2A_FORCE_BACKEND environment
  /// variable overrides both (see sim/simd/Backend.h). Results are
  /// bit-identical for every value — the backends differ only in
  /// instruction selection (and, for rmaj64, in sharing one master
  /// trajectory across clone replicas; see sim/simd/ReplicaSlab.h), never
  /// in any replica's trajectory.
  SimdBackend Backend = SimdBackend::Auto;

  // Supervised execution (see support/Supervisor.h). The launch of every
  // replica runs under chaosPoint(ChaosSite::EngineReplica) and this
  // retry policy: a throw (injected or real) re-attempts the replica
  // after a capped-exponential backoff. Retries re-run the replica's
  // whole preparation, so a retried replica is bit-identical to an
  // untroubled one.

  /// Per-replica retry policy for infrastructure failures.
  RetryPolicy Retry;

  /// Invoked (from the owning worker thread, like OnResult) for a replica
  /// abandoned after Retry.MaxAttempts failed attempts. Its result slot
  /// keeps the default SimResult; OnResult is not called for it. Callers
  /// use this to quarantine the work item instead of losing the batch.
  std::function<void(int Replica)> OnFailure;
};

/// The batched engine. Like World, it borrows the Torus, which must
/// outlive it; one BatchEngine can serve any number of run() calls.
class BatchEngine {
public:
  explicit BatchEngine(const Torus &T);

  /// Simulates every replica to completion (solved, extinct, or MaxSteps)
  /// and returns one SimResult per replica, in replica order. Each result
  /// is bit-identical to World::run on the same configuration.
  std::vector<SimResult> run(const std::vector<BatchReplica> &Replicas,
                             const BatchRunOptions &Options = {}) const;

  const Torus &torus() const { return T; }

private:
  const Torus &T;
  /// Bit d set when stepping from the cell in ring direction d crosses the
  /// torus seam — precomputed so the Bordered path is a mask test instead
  /// of a divide per (agent, direction).
  std::vector<uint8_t> BoundaryMask;
  /// The torus neighbour table narrowed to int16 (any practical field has
  /// far fewer than 32768 cells): half the cache footprint of the int32
  /// table on the fast path's hottest loads. Empty if the grid is too big.
  std::vector<int16_t> Neighbors16;
  /// Direction x turn-code -> new direction (degree-dependent algebra).
  uint8_t TurnMap[6][4] = {};
};

} // namespace ca2a

#endif // CA2A_SIM_BATCHENGINE_H
