//===- sim/Fault.h - Fault injection for the CA engine ----------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A first-class fault model for the multi-agent engine.
///
/// The paper assumes a perfectly synchronous, lossless torus. Related work
/// (Brandt/Uitto/Wattenhofer on asynchronous grid exploration; Jung/Sakho
/// on all-to-all broadcast in k-ary n-tori) shows robustness is where such
/// models get interesting: do evolved FSMs degrade gracefully when agents
/// stall or messages drop? FaultModel defines four independent per-step
/// fault processes, all driven by one dedicated, seeded RNG stream so that
/// every faulty run is reproducible bit-for-bit:
///
///   * stall   — an agent skips its action phase this step (no move
///     request, no turn, no colour write, no state change). It still
///     occupies its cell and still communicates: a stalled processor's
///     state remains readable by its neighbours.
///   * death   — an agent halts permanently. Its cell is freed, its
///     communication vector freezes, and it leaves the task: success
///     becomes "every *surviving* agent holds the bits of all survivors".
///   * link drop — one directed neighbour read during the OR-exchange
///     fails (the reader does not receive that neighbour's vector this
///     step). Drops are drawn per (agent, direction) pair, whether or not
///     the link is in use, so the channel process is independent of agent
///     positions.
///   * colour flip — a cell of the colour layer is corrupted to a
///     uniformly random *different* colour value (a bit flip in the
///     medium the agents use for stigmergic coordination).
///
/// With every probability zero the model is inert: the engine consumes no
/// random draws and is bit-identical to the fault-free engine.
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_FAULT_H
#define CA2A_SIM_FAULT_H

#include <cstdint>
#include <functional>
#include <string>

namespace ca2a {

class Torus;

/// Per-step fault probabilities plus the dedicated fault-stream seed.
struct FaultModel {
  /// P(agent skips its action phase) per agent per step.
  double StallProbability = 0.0;
  /// P(agent halts permanently) per agent per step.
  double DeathProbability = 0.0;
  /// P(one directed neighbour read fails) per (agent, direction) per step.
  double LinkDropProbability = 0.0;
  /// P(cell colour is corrupted) per cell per step.
  double ColorFlipProbability = 0.0;

  /// Seed of the dedicated fault RNG stream. Independent of every other
  /// stream in the system: the same placements + genome + fault seed
  /// reproduce the identical faulty trajectory.
  uint64_t Seed = 0xfa0175eedULL;

  /// Optional restriction of link-drop faults to particular directed
  /// links (cell, direction); links failing the predicate never drop.
  /// Null (the default) makes every link faultable. Primarily a testing
  /// hook — e.g. restricting drops to seam-crossing links shows that a
  /// faulty seam link behaves exactly like Bordered blocking.
  std::function<bool(const Torus &T, int Cell, uint8_t Direction)> LinkFilter;

  /// True when any fault process can fire.
  bool any() const {
    return StallProbability > 0.0 || DeathProbability > 0.0 ||
           LinkDropProbability > 0.0 || ColorFlipProbability > 0.0;
  }
};

/// Counts of fault events that actually fired during one run.
struct FaultStats {
  int64_t Stalls = 0;       ///< Agent-steps lost to stalls.
  int64_t Deaths = 0;       ///< Agents that died.
  int64_t DroppedLinks = 0; ///< Directed neighbour reads that failed.
  int64_t ColorFlips = 0;   ///< Cells corrupted.

  int64_t total() const {
    return Stalls + Deaths + DroppedLinks + ColorFlips;
  }
  bool operator==(const FaultStats &Other) const {
    return Stalls == Other.Stalls && Deaths == Other.Deaths &&
           DroppedLinks == Other.DroppedLinks &&
           ColorFlips == Other.ColorFlips;
  }
  bool operator!=(const FaultStats &Other) const { return !(*this == Other); }
};

/// Human-readable one-line summaries for bench/example output.
std::string describeFaultModel(const FaultModel &F);
std::string describeFaultStats(const FaultStats &S);

} // namespace ca2a

#endif // CA2A_SIM_FAULT_H
