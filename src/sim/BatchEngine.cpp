//===- sim/BatchEngine.cpp - Batched SoA CA simulation engine -------------===//
//
// The replica core below is a line-for-line semantic port of World's
// injectFaults / exchangeCommunication / applyActions / run, restructured
// into flat arrays. Every RNG draw happens in the same order with the same
// arguments as in World, so one fault seed produces one identical faulty
// trajectory in both engines — the property the differential suite pins.
//
// The execution layer on top is allocation-free and load-balanced:
//
//   * Every distinct genome in a batch is compiled exactly once, before
//     the fan-out, into a per-run cache of flat transition tables that all
//     replicas and workers share read-only.
//   * Each worker owns a small arena of ReplicaWorkspaces. A workspace is
//     allocated when the worker starts and reset between replicas, so the
//     steady state touches no heap at all (an instrumented counter in the
//     run stats proves it). Fast-path replicas in one arena advance in
//     lockstep — pass 1 of every resident replica, then pass 2 — so the
//     core always has independent work in flight to hide the latency of a
//     single replica's dependence chains.
//   * Workers pull replica indices from one shared atomic counter (work
//     stealing) and refill a workspace the moment its replica finishes,
//     so no worker idles behind a slow neighbour. Each replica writes its
//     own result slot; scheduling order cannot change a single bit.
//
//===----------------------------------------------------------------------===//

#include "sim/BatchEngine.h"

#include "sim/simd/FastPath.h"
#include "sim/simd/Kernel.h"
#include "sim/simd/ReplicaSlab.h"
#include "support/Chaos.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <unordered_map>

using namespace ca2a;

const char *ca2a::engineKindName(EngineKind K) {
  return K == EngineKind::Reference ? "reference" : "batch";
}

bool ca2a::parseEngineKind(const std::string &Text, EngineKind &K) {
  std::string Lower = Text;
  for (char &C : Lower)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Lower == "reference" || Lower == "ref" || Lower == "world") {
    K = EngineKind::Reference;
    return true;
  }
  if (Lower == "batch") {
    K = EngineKind::Batch;
    return true;
  }
  return false;
}

BatchEngine::BatchEngine(const Torus &T) : T(T) {
  BoundaryMask.resize(static_cast<size_t>(T.numCells()), 0);
  int Degree = T.degree();
  for (int Cell = 0; Cell != T.numCells(); ++Cell) {
    uint8_t Mask = 0;
    for (int D = 0; D != Degree; ++D)
      if (T.crossesBoundary(Cell, static_cast<uint8_t>(D)))
        Mask |= static_cast<uint8_t>(1u << D);
    BoundaryMask[static_cast<size_t>(Cell)] = Mask;
  }
  for (uint8_t Dir = 0; Dir != static_cast<uint8_t>(Degree); ++Dir)
    for (uint8_t Code = 0; Code != NumTurnCodes; ++Code)
      TurnMap[Dir][Code] = applyTurn(T.kind(), Dir, static_cast<Turn>(Code));
  if (T.numCells() <= INT16_MAX) {
    size_t TableSize =
        static_cast<size_t>(T.numCells()) * static_cast<size_t>(Degree);
    const int32_t *Wide = T.neighbors(0);
    // Two zero-padding entries past the logical end: the AVX2 kernel reads
    // each int16 with a 4-byte gather, so the last entry's load spills two
    // bytes past the table (see sim/simd/KernelAVX2.cpp).
    Neighbors16.resize(TableSize + 2, 0);
    for (size_t I = 0; I != TableSize; ++I)
      Neighbors16[I] = static_cast<int16_t>(Wide[I]);
  }
}

namespace {

/// Fast-path replicas resident per worker arena: advanced in lockstep so
/// the core always has this many independent dependence chains in flight.
/// Sized so the combined per-cell state of a paper-sized field stays
/// comfortably inside L1/L2 (tuned on the bench_batch workload).
constexpr int LockstepBlock = 8;

double secondsSince(std::chrono::steady_clock::time_point Start) {
  // WorkerBusySeconds instrumentation only — timing never feeds a
  // SimResult. det-lint: allow(wall-clock) instrumentation only
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

// The fast-path step core (FastCtx, the packed-entry/agent encodings, the
// per-backend phase implementations) lives in sim/simd/FastPath.h and the
// Kernel*.cpp translation units; this file keeps the execution layer —
// workspaces, compile cache, the worker fan-out — and the general path.
using simd::agentCell;
using simd::agentDir;
using simd::agentState;
using simd::entryColor;
using simd::entryMoves;
using simd::entryState;
using simd::entryTurn;
using simd::FastCtx;
using simd::fastEpilogue;
using simd::MoveBit;
using simd::ObstacleStamp;
using simd::packAgent;
using simd::PackedEntry;

void compileGenome(const Genome &G, std::vector<PackedEntry> &Table) {
  const GenomeDims &D = G.dims();
  Table.resize(static_cast<size_t>(D.length()));
  for (int I = 0; I != D.numInputs(); ++I)
    for (int S = 0; S != D.States; ++S) {
      const GenomeEntry &E = G.entry(I, S);
      Table[static_cast<size_t>(I * D.States + S)] =
          static_cast<uint32_t>(E.NextState) |
          (E.Act.Move ? MoveBit : 0u) |
          (static_cast<uint32_t>(E.Act.SetColor) << 16) |
          (static_cast<uint32_t>(E.Act.TurnCode) << 24);
    }
}

/// Per-run genome-compile cache: each distinct Genome pointer is compiled
/// once, before the fan-out, and the flat table is shared read-only by
/// every replica and worker (the tables never change during a run, so no
/// synchronisation is needed). Keyed by pointer identity — BatchReplica
/// already requires borrowed genomes to stay unmodified for the run.
class GenomeCompileCache {
public:
  const PackedEntry *tableFor(const Genome *G) {
    auto It = Index.find(G);
    if (It != Index.end()) {
      ++NumHits;
      return It->second;
    }
    ++NumMisses;
    Tables.emplace_back();
    compileGenome(*G, Tables.back());
    const PackedEntry *Data = Tables.back().data();
    Index.emplace(G, Data);
    return Data;
  }

  uint64_t hits() const { return NumHits; }
  uint64_t misses() const { return NumMisses; }

private:
  std::deque<std::vector<PackedEntry>> Tables; ///< Stable table storage.
  std::unordered_map<const Genome *, const PackedEntry *> Index;
  uint64_t NumHits = 0;
  uint64_t NumMisses = 0;
};

/// Everything a workspace needs to execute one replica, resolved against
/// the compile cache before the fan-out.
struct ReplicaPlan {
  const PackedEntry *TabA = nullptr;
  const PackedEntry *TabB = nullptr; ///< Equals TabA when the replica has no B.
  GenomePolicy Policy = GenomePolicy::Single;
  int States = 0;
  int NumColors = 0;
};

/// All scratch one replica needs, owned by a worker for the whole run and
/// reset between replicas: after a slot's first replica every buffer has
/// reached its working capacity and the steady state performs zero heap
/// allocations. The instrumented grow counters prove the claim — every
/// capacity change is recorded, split into warm-up (first replica of the
/// slot) and steady-state events.
class ReplicaWorkspace {
public:
  ReplicaWorkspace(const Torus &T, const std::vector<uint8_t> &BoundaryMask,
                   const std::vector<int16_t> &Neighbors16,
                   const uint8_t (&TurnMap)[6][4])
      : T(T), BoundaryMask(BoundaryMask.data()), TurnMap(TurnMap),
        NeighborBase(T.neighbors(0)),
        Neighbor16Base(Neighbors16.empty() ? nullptr : Neighbors16.data()),
        NumCells(T.numCells()), Degree(T.degree()) {
    size_t Cells = static_cast<size_t>(NumCells);
    // Logical size NumCells plus gather slack: the AVX2 kernel reads each
    // colour byte with a 4-byte gather (sim/simd/KernelAVX2.cpp), so the
    // last cells' loads spill up to three bytes past the field. Every loop
    // over the field must use NumCells, never Colors.size() — the fault
    // colour-flip draw count is part of the RNG parity contract.
    sizeN(Colors, Cells + 8);
    sizeN(Occupancy, Cells);
    sizeN(VisitCounts, Cells);
    sizeN(ObstacleMask, Cells);
    // Both step loops restore the all-minus-one claim invariant before
    // every early exit, so claims are initialised once, not per reset.
    fillN(ClaimMinId, Cells, int32_t(-1));
    // Fast-path stamps start below every epoch; the epoch counter is
    // monotonic across the slot's whole replica stream, so the array is
    // never refilled between replicas.
    fillN(ClaimStamp, Cells, uint32_t(0));
    sizeN(CellComm, Cells);
    std::fill(CellComm.begin(), CellComm.end(), 0);
  }

  /// Reset: ready the workspace for one replica's step loop. \p Plan must
  /// be the compile-cache resolution of \p R. \p SuppressFaults prepares
  /// the workspace as an rmaj64 slab *master*: the master trajectory is
  /// the shared fault-free prefix of its lanes, so its own fault model is
  /// disabled (each lane draws its private stream in the slab loop) and
  /// the fast path stays eligible even when the enrolled replicas carry
  /// fault probabilities.
  void prepare(const BatchReplica &R, const ReplicaPlan &Plan,
               bool SuppressFaults = false);

  /// True when the replica prepared last can run the single-word fast
  /// path (no faults, no borders, one comm word, narrowed neighbours).
  bool fastEligible() const {
    return !FaultsActive && !Options->Bordered && Words == 1 &&
           Neighbor16Base != nullptr;
  }

  /// Runs the prepared replica to completion on the calling thread,
  /// choosing the fast or general path (an observer forces the general
  /// path, which is the only one that can surface per-step views). \p KN
  /// supplies the fast path's solo loop; the general path ignores it.
  SimResult runSolo(int ReplicaIndex,
                    const std::function<void(const BatchStepView &)> &OnStep,
                    const simd::LaneKernel &KN, ReplicaFinalState *Final);

  /// Lockstep API: bundle the fast-path pointers/parameters for the
  /// prepared replica (requires fastEligible()). \p NeedVisits must be
  /// true when the replica's final state will be captured — visit counts
  /// feed nothing else, so the hot loop skips them otherwise.
  FastCtx beginFast(bool NeedVisits);
  /// Lockstep API: package a finished FastCtx as the replica's SimResult.
  SimResult finishFast(FastCtx &C, ReplicaFinalState *Final);

  /// Slab retirement (rmaj64): overwrite the just-prepared replica's state
  /// with its slab master's mid-run state at step \p C.Time and restore the
  /// lane's fault stream to \p Snapshot (taken before the firing step's
  /// draws). Must run after prepare() — prepare resets FaultRng, obstacles
  /// and colours, and adoptMaster relies on those base values. The lane is
  /// then exactly where a solo reference run would be at the top of
  /// iteration C.Time: no fault has fired yet, so alive flags, stall
  /// flags and counters keep prepare()'s fresh values, and resumeSolo
  /// replays the firing step draw-for-draw.
  void adoptMaster(const ReplicaWorkspace &M, const FastCtx &C,
                   const Rng &Snapshot);

  /// Runs the general (fault-capable) loop from the current Time to
  /// completion. Identical to the reference loop resumed at iteration
  /// Time — which equals the plain solo loop when Time == 0 (runSolo's
  /// non-observer general path delegates here).
  SimResult resumeSolo(ReplicaFinalState *Final);

  /// Copies the finished replica's field/agents out (public surface of
  /// captureFinalState, used by the slab loop to capture one master's
  /// terminal state into several lanes' final-state slots).
  void captureFinal(ReplicaFinalState &Out) const { captureFinalState(Out); }

  /// Marks the end of this slot's first replica: growths from here on are
  /// steady-state allocations.
  void markWarm() { Warm = true; }
  uint64_t allocations() const { return AllocEvents; }
  uint64_t steadyAllocations() const { return SteadyAllocEvents; }

private:
  /// Package the workspace's terminal state as the SimResult the
  /// reference engine would have produced.
  SimResult finishReplica(bool Success, ReplicaFinalState *Final);
  void injectFaults();
  void exchange();
  void applyActions();
  bool rowInformedAllAlive(const uint64_t *Row) const;
  bool rowContainsSurvivors(const uint64_t *Row) const;
  void captureFinalState(ReplicaFinalState &Out) const;

  void noteGrow() {
    ++AllocEvents;
    if (Warm)
      ++SteadyAllocEvents;
  }
  template <class T> void sizeN(std::vector<T> &V, size_t N) {
    if (N > V.capacity())
      noteGrow();
    V.resize(N);
  }
  template <class T> void fillN(std::vector<T> &V, size_t N, T Value) {
    if (N > V.capacity())
      noteGrow();
    V.assign(N, Value);
  }

  const Torus &T;
  const uint8_t *BoundaryMask;
  const uint8_t (&TurnMap)[6][4];
  const int32_t *NeighborBase;   ///< Flat neighbour table, stride = degree.
  const int16_t *Neighbor16Base; ///< Narrowed copy; null on huge grids.
  int NumCells;
  int Degree;

  // Resolved against the per-run compile cache; read-only, shared.
  const PackedEntry *TabA = nullptr;
  const PackedEntry *TabB = nullptr;
  GenomePolicy Policy = GenomePolicy::Single;
  int States = 0;
  int NumColors = 0;
  const SimOptions *Options = nullptr;

  // Replica state, SoA.
  int K = 0;     ///< Agents.
  int Words = 0; ///< uint64_t words per communication row.
  uint64_t TailMask = ~uint64_t(0);
  std::vector<int32_t> Cell;
  std::vector<uint8_t> Direction;
  std::vector<uint8_t> ControlState;
  std::vector<uint8_t> Alive;
  std::vector<uint8_t> Informed;
  std::vector<uint8_t> Stalled;
  std::vector<uint64_t> Comm, CommNext; ///< K x Words, contiguous rows.
  std::vector<uint64_t> SurvivorWords;  ///< One row: bit per live agent.
  /// Fast path only: the comm word of the agent occupying each cell (0 for
  /// empty cells), so the exchange ORs neighbour cells unconditionally
  /// instead of branching on occupancy.
  std::vector<uint64_t> CellComm;

  std::vector<uint8_t> Colors;
  std::vector<int16_t> Occupancy;
  std::vector<int32_t> VisitCounts;
  std::vector<uint8_t> ObstacleMask;
  std::vector<int32_t> ObstacleCells; ///< Flat indices, for the fast path.

  // Per-step scratch.
  std::vector<int32_t> ClaimMinId;
  /// Fast path only: per-cell claim epochs plus the slot-lifetime epoch
  /// counter (see FastCtx::StampP).
  std::vector<uint32_t> ClaimStamp;
  uint32_t ClaimEpoch = 0;
  std::vector<int32_t> TouchedCells;
  std::vector<int32_t> FrontCell;
  std::vector<uint8_t> Input;
  std::vector<uint8_t> CanMove;
  std::vector<uint8_t> Skip;
  /// Fast path only: per agent, the (move-masked) table entry it will
  /// execute in the low 32 bits and its front cell in the high 32, both
  /// resolved during pass 1.
  std::vector<uint64_t> Selected;
  /// Fast path only: per-agent stage-A stash of the two-stage backends
  /// (sliced64/avx2) — see FastCtx::ScratchP.
  std::vector<uint64_t> Scratch;
  /// Fast path only: packed (cell, direction, state) per agent — see
  /// packAgent. Built by beginFast, written back by finishFast.
  std::vector<uint64_t> AgentPack;

  // Allocation instrumentation.
  uint64_t AllocEvents = 0;
  uint64_t SteadyAllocEvents = 0;
  bool Warm = false;

  Rng FaultRng{0};
  bool FaultsActive = false;
  FaultStats Counters;
  int NumAlive = 0;
  int NumInformed = 0;
  int Time = 0;
};

void ReplicaWorkspace::prepare(const BatchReplica &R,
                               const ReplicaPlan &Plan,
                               bool SuppressFaults) {
  TabA = Plan.TabA;
  TabB = Plan.TabB;
  Policy = Plan.Policy;
  States = Plan.States;
  NumColors = Plan.NumColors;

  const SimOptions &O = *R.Options;
  Options = &O;
  Time = 0;

  FaultsActive = O.Faults.any() && !SuppressFaults;
  FaultRng = Rng(O.Faults.Seed);
  Counters = FaultStats();

  std::fill(ObstacleMask.begin(), ObstacleMask.end(), 0);
  if (O.Obstacles.size() > ObstacleCells.capacity())
    noteGrow();
  ObstacleCells.clear();
  for (Coord Obstacle : O.Obstacles) {
    int C = T.indexOf(Obstacle);
    ObstacleMask[static_cast<size_t>(C)] = 1;
    ObstacleCells.push_back(C);
  }

  std::fill(Colors.begin(), Colors.end(), 0);
  std::fill(Occupancy.begin(), Occupancy.end(), int16_t(-1));
  std::fill(VisitCounts.begin(), VisitCounts.end(), 0);

  const std::vector<Placement> &Placements = *R.Placements;
  K = static_cast<int>(Placements.size());
  fillN(TouchedCells, static_cast<size_t>(K),
        int32_t(0)); // >= max claims per step.
  assert(K >= 1 && K <= NumCells && "replica agent count out of range");
  Words = (K + 63) / 64;
  TailMask = (K % 64) ? ((uint64_t(1) << (K % 64)) - 1) : ~uint64_t(0);

  size_t SK = static_cast<size_t>(K);
  sizeN(Cell, SK);
  sizeN(Direction, SK);
  sizeN(ControlState, SK);
  fillN(Alive, SK, uint8_t(1));
  fillN(Informed, SK, uint8_t(K == 1 ? 1 : 0));
  fillN(Stalled, SK, uint8_t(0));
  sizeN(FrontCell, SK);
  sizeN(Input, SK);
  sizeN(CanMove, SK);
  sizeN(Selected, SK);
  sizeN(Scratch, SK);
  sizeN(AgentPack, SK);
  sizeN(Skip, SK);
  fillN(Comm, SK * static_cast<size_t>(Words), uint64_t(0));
  fillN(CommNext, SK * static_cast<size_t>(Words), uint64_t(0));
  fillN(SurvivorWords, static_cast<size_t>(Words), ~uint64_t(0));
  SurvivorWords[static_cast<size_t>(Words) - 1] = TailMask;

  for (int Id = 0; Id != K; ++Id) {
    const Placement &P = Placements[static_cast<size_t>(Id)];
    int C = T.indexOf(P.Pos);
    assert(P.Direction < Degree && "placement direction out of range");
    assert(Occupancy[static_cast<size_t>(C)] < 0 &&
           "two agents placed on one cell");
    assert(!ObstacleMask[static_cast<size_t>(C)] &&
           "agent placed on an obstacle");
    Cell[static_cast<size_t>(Id)] = C;
    Direction[static_cast<size_t>(Id)] = P.Direction;
    ControlState[static_cast<size_t>(Id)] = O.Start.stateFor(Id);
    Comm[static_cast<size_t>(Id) * Words + static_cast<size_t>(Id) / 64] |=
        uint64_t(1) << (Id % 64);
    Occupancy[static_cast<size_t>(C)] = static_cast<int16_t>(Id);
    ++VisitCounts[static_cast<size_t>(C)];
  }
  NumAlive = K;
  NumInformed = (K == 1) ? 1 : 0;
}

void ReplicaWorkspace::injectFaults() {
  // Mirrors World::injectFaults draw-for-draw: deaths, stalls, colour
  // flips, in agent/cell order; zero-probability processes draw nothing.
  const FaultModel &F = Options->Faults;
  if (F.DeathProbability > 0.0) {
    for (int Id = 0; Id != K; ++Id) {
      if (!Alive[static_cast<size_t>(Id)] ||
          !FaultRng.bernoulli(F.DeathProbability))
        continue;
      Alive[static_cast<size_t>(Id)] = 0;
      Informed[static_cast<size_t>(Id)] = 0;
      Occupancy[static_cast<size_t>(Cell[static_cast<size_t>(Id)])] = -1;
      SurvivorWords[static_cast<size_t>(Id) / 64] &=
          ~(uint64_t(1) << (Id % 64));
      --NumAlive;
      ++Counters.Deaths;
    }
  }
  if (F.StallProbability > 0.0) {
    for (int Id = 0; Id != K; ++Id) {
      Stalled[static_cast<size_t>(Id)] =
          Alive[static_cast<size_t>(Id)] &&
                  FaultRng.bernoulli(F.StallProbability)
              ? 1
              : 0;
      Counters.Stalls += Stalled[static_cast<size_t>(Id)];
    }
  }
  if (F.ColorFlipProbability > 0.0 && Options->ColorsEnabled) {
    // NumCells, not Colors.size(): the buffer carries gather padding, and
    // drawing for the padding would break draw-for-draw parity with World.
    for (size_t C = 0, E = static_cast<size_t>(NumCells); C != E; ++C) {
      if (!FaultRng.bernoulli(F.ColorFlipProbability))
        continue;
      int Replacement = static_cast<int>(
          FaultRng.uniformInt(static_cast<uint64_t>(NumColors - 1)));
      if (Replacement >= Colors[C])
        ++Replacement;
      Colors[C] = static_cast<uint8_t>(Replacement);
      ++Counters.ColorFlips;
    }
  }
}

bool ReplicaWorkspace::rowInformedAllAlive(const uint64_t *Row) const {
  for (int W = 0; W != Words - 1; ++W)
    if (Row[W] != ~uint64_t(0))
      return false;
  return Row[Words - 1] == TailMask;
}

bool ReplicaWorkspace::rowContainsSurvivors(const uint64_t *Row) const {
  for (int W = 0; W != Words; ++W)
    if ((Row[W] & SurvivorWords[static_cast<size_t>(W)]) !=
        SurvivorWords[static_cast<size_t>(W)])
      return false;
  return true;
}

void ReplicaWorkspace::exchange() {
  const SimOptions &O = *Options;
  const FaultModel &F = O.Faults;
  bool DropsActive = FaultsActive && F.LinkDropProbability > 0.0;
  bool Bordered = O.Bordered;
  const int W = Words;
  for (int Id = 0; Id != K; ++Id) {
    uint64_t *Next = &CommNext[static_cast<size_t>(Id) * W];
    const uint64_t *Own = &Comm[static_cast<size_t>(Id) * W];
    std::memcpy(Next, Own, static_cast<size_t>(W) * sizeof(uint64_t));
    if (!Alive[static_cast<size_t>(Id)])
      continue; // Frozen vector: dead agents neither read nor are read.
    int C = Cell[static_cast<size_t>(Id)];
    const int32_t *Neighbors = &NeighborBase[static_cast<size_t>(C) * Degree];
    uint8_t Seam = Bordered ? BoundaryMask[static_cast<size_t>(C)] : 0;
    for (int D = 0; D != Degree; ++D) {
      if (Bordered && ((Seam >> D) & 1))
        continue;
      if (DropsActive &&
          (!F.LinkFilter ||
           F.LinkFilter(T, C, static_cast<uint8_t>(D))) &&
          FaultRng.bernoulli(F.LinkDropProbability)) {
        ++Counters.DroppedLinks;
        continue;
      }
      int NeighborAgent = Occupancy[static_cast<size_t>(Neighbors[D])];
      if (NeighborAgent >= 0) {
        const uint64_t *Src =
            &Comm[static_cast<size_t>(NeighborAgent) * W];
        for (int I = 0; I != W; ++I)
          Next[I] |= Src[I];
      }
    }
  }
  std::swap(Comm, CommNext);
  NumInformed = 0;
  if (NumAlive == K) {
    for (int Id = 0; Id != K; ++Id) {
      bool Inf = rowInformedAllAlive(&Comm[static_cast<size_t>(Id) * W]);
      Informed[static_cast<size_t>(Id)] = Inf;
      NumInformed += Inf;
    }
  } else {
    for (int Id = 0; Id != K; ++Id) {
      if (!Alive[static_cast<size_t>(Id)])
        continue; // Stays uninformed; flag was cleared at death.
      bool Inf = rowContainsSurvivors(&Comm[static_cast<size_t>(Id) * W]);
      Informed[static_cast<size_t>(Id)] = Inf;
      NumInformed += Inf;
    }
  }
}

void ReplicaWorkspace::applyActions() {
  const SimOptions &O = *Options;
  bool Bordered = O.Bordered;
  bool Gaze = O.Arbitration == ArbitrationMode::GazePriority;

  // Table selection per World::activeGenome: TimeShuffle swaps both slots
  // per step; SpeciesParity splits by ID parity; Single uses A throughout.
  const PackedEntry *TabEven = TabA;
  const PackedEntry *TabOdd = TabA;
  if (Policy == GenomePolicy::TimeShuffle && (Time % 2)) {
    TabEven = TabB;
    TabOdd = TabB;
  } else if (Policy == GenomePolicy::SpeciesParity) {
    TabOdd = TabB;
  }

  // Pass 1a: observations and move requests under the blocked=0 hypothesis.
  TouchedCells.clear();
  for (int Id = 0; Id != K; ++Id) {
    bool Skipped =
        FaultsActive &&
        (!Alive[static_cast<size_t>(Id)] || Stalled[static_cast<size_t>(Id)]);
    Skip[static_cast<size_t>(Id)] = Skipped;
    if (Skipped)
      continue;
    int C = Cell[static_cast<size_t>(Id)];
    uint8_t Dir = Direction[static_cast<size_t>(Id)];
    int Front = NeighborBase[static_cast<size_t>(C) * Degree + Dir];
    FrontCell[static_cast<size_t>(Id)] = Front;
    int Color = Colors[static_cast<size_t>(C)];
    int FrontColor =
        (Bordered && ((BoundaryMask[static_cast<size_t>(C)] >> Dir) & 1))
            ? 0
            : Colors[static_cast<size_t>(Front)];
    int FreeInput = 2 * (Color + NumColors * FrontColor);
    const PackedEntry *Tab = (Id & 1) ? TabOdd : TabEven;
    bool Requests =
        entryMoves(Tab[static_cast<size_t>(FreeInput * States) +
                       ControlState[static_cast<size_t>(Id)]]) ||
        Gaze;
    if (Requests) {
      int32_t &Claim = ClaimMinId[static_cast<size_t>(Front)];
      if (Claim < 0) {
        Claim = Id;
        TouchedCells.push_back(Front);
      } else {
        Claim = std::min(Claim, Id);
      }
    }
    Input[static_cast<size_t>(Id)] = static_cast<uint8_t>(FreeInput);
  }

  // Pass 1b: arbitration — front cell enterable and no lower-ID claimant.
  for (int Id = 0; Id != K; ++Id) {
    if (Skip[static_cast<size_t>(Id)])
      continue;
    int Front = FrontCell[static_cast<size_t>(Id)];
    int C = Cell[static_cast<size_t>(Id)];
    uint8_t Dir = Direction[static_cast<size_t>(Id)];
    bool FrontOccupied =
        Occupancy[static_cast<size_t>(Front)] >= 0 ||
        ObstacleMask[static_cast<size_t>(Front)] != 0 ||
        (Bordered && ((BoundaryMask[static_cast<size_t>(C)] >> Dir) & 1));
    int32_t Claim = ClaimMinId[static_cast<size_t>(Front)];
    bool LosesConflict = Claim >= 0 && Claim < Id;
    bool Can = !FrontOccupied && !LosesConflict;
    CanMove[static_cast<size_t>(Id)] = Can;
    if (!Can)
      Input[static_cast<size_t>(Id)] |= 1; // blocked bit.
  }
  for (int32_t C : TouchedCells)
    ClaimMinId[static_cast<size_t>(C)] = -1;

  // Pass 2: apply (setcolor, turn, move) simultaneously.
  bool ColorsEnabled = O.ColorsEnabled;
  for (int Id = 0; Id != K; ++Id) {
    if (Skip[static_cast<size_t>(Id)])
      continue;
    const PackedEntry *Tab = (Id & 1) ? TabOdd : TabEven;
    const PackedEntry E =
        Tab[static_cast<size_t>(Input[static_cast<size_t>(Id)] * States) +
            ControlState[static_cast<size_t>(Id)]];
    int C = Cell[static_cast<size_t>(Id)];
    if (ColorsEnabled)
      Colors[static_cast<size_t>(C)] = entryColor(E);
    ControlState[static_cast<size_t>(Id)] = entryState(E);
    Direction[static_cast<size_t>(Id)] =
        TurnMap[Direction[static_cast<size_t>(Id)]][entryTurn(E)];
    if (entryMoves(E) && CanMove[static_cast<size_t>(Id)]) {
      int Front = FrontCell[static_cast<size_t>(Id)];
      assert(Occupancy[static_cast<size_t>(Front)] < 0 &&
             "arbitration let two agents collide");
      Occupancy[static_cast<size_t>(C)] = -1;
      Cell[static_cast<size_t>(Id)] = Front;
      Occupancy[static_cast<size_t>(Front)] = static_cast<int16_t>(Id);
      ++VisitCounts[static_cast<size_t>(Front)];
    }
  }
}

void ReplicaWorkspace::captureFinalState(ReplicaFinalState &Out) const {
  // First NumCells only — the buffer's tail is gather padding.
  Out.Colors.assign(Colors.begin(), Colors.begin() + NumCells);
  Out.Occupancy = Occupancy;
  Out.VisitCounts = VisitCounts;
  Out.Agents.resize(static_cast<size_t>(K));
  for (int Id = 0; Id != K; ++Id) {
    ReplicaAgentState &A = Out.Agents[static_cast<size_t>(Id)];
    A.Cell = Cell[static_cast<size_t>(Id)];
    A.Direction = Direction[static_cast<size_t>(Id)];
    A.ControlState = ControlState[static_cast<size_t>(Id)];
    A.Informed = Informed[static_cast<size_t>(Id)] != 0;
    A.Alive = Alive[static_cast<size_t>(Id)] != 0;
    A.Comm = BitVector(static_cast<size_t>(K));
    const uint64_t *Row = &Comm[static_cast<size_t>(Id) * Words];
    for (int Bit = 0; Bit != K; ++Bit)
      if ((Row[Bit / 64] >> (Bit % 64)) & 1)
        A.Comm.set(static_cast<size_t>(Bit));
  }
}

FastCtx ReplicaWorkspace::beginFast(bool NeedVisits) {
  assert(fastEligible() && "fast context on an ineligible replica");
  FastCtx C;
  C.NB = Neighbor16Base;
  C.CommW = Comm.data();
  C.CellW = CellComm.data();
  C.AgentP = AgentPack.data();
  C.InformedP = Informed.data();
  C.ColorsP = Colors.data();
  C.VisitP = VisitCounts.data();
  C.StampP = ClaimStamp.data();
  C.SelP = Selected.data();
  C.ScratchP = Scratch.data();
  C.TabA = TabA;
  C.TabB = TabB;
  C.TurnMap = &TurnMap[0];
  C.ObstC = ObstacleCells.data();
  C.Full = TailMask;
  C.Policy = Policy;
  C.K = K;
  C.St = States;
  C.NC = NumColors;
  C.MaxSteps = Options->MaxSteps;
  C.Cells = NumCells;
  C.NumObst = static_cast<int>(ObstacleCells.size());
  C.Gaze = Options->Arbitration == ArbitrationMode::GazePriority;
  C.ColorsOn = Options->ColorsEnabled;
  C.NeedVisits = NeedVisits;
  C.Epoch = ClaimEpoch;
  C.NewInformed = NumInformed; // Preserved verbatim when MaxSteps <= 0.
  C.Time = Time;
  C.Done = C.Time >= C.MaxSteps; // Degenerate cutoff: no iteration runs.
  // The fast loop rejects obstacle targets through the claim stamps:
  // the sentinel compares "claimed" against every epoch, and the pass-1
  // max update can never overwrite it (finishFast clears the marks so the
  // next replica can bring a different obstacle set).
  for (int32_t Obstacle : ObstacleCells)
    ClaimStamp[static_cast<size_t>(Obstacle)] = ObstacleStamp;
  // CellComm is all-zero here (zeroed at construction and re-zeroed by
  // every fastEpilogue), so only the occupied cells need writing.
  for (int Id = 0; Id != K; ++Id) {
    C.AgentP[Id] = packAgent(Cell[static_cast<size_t>(Id)],
                             Direction[static_cast<size_t>(Id)],
                             ControlState[static_cast<size_t>(Id)]);
    C.CellW[Cell[static_cast<size_t>(Id)]] = C.CommW[Id];
  }
  return C;
}

SimResult ReplicaWorkspace::finishFast(FastCtx &C, ReplicaFinalState *Final) {
  fastEpilogue(C);
  ClaimEpoch = C.Epoch;
  for (int32_t Obstacle : ObstacleCells)
    ClaimStamp[static_cast<size_t>(Obstacle)] = 0;
  // The fast loop never maintains the occupancy array (the CellComm words
  // carry "occupied" for it); rebuild it from the agents' terminal cells —
  // the pre-loop positions are still in Cell[], so clear those first.
  for (int Id = 0; Id != K; ++Id)
    Occupancy[static_cast<size_t>(Cell[static_cast<size_t>(Id)])] = -1;
  for (int Id = 0; Id != K; ++Id) {
    const uint64_t A = C.AgentP[Id];
    Cell[static_cast<size_t>(Id)] = agentCell(A);
    Direction[static_cast<size_t>(Id)] = static_cast<uint8_t>(agentDir(A));
    ControlState[static_cast<size_t>(Id)] =
        static_cast<uint8_t>(agentState(A));
    Occupancy[static_cast<size_t>(agentCell(A))] =
        static_cast<int16_t>(Id);
  }
  Time = C.Time;
  NumInformed = C.NewInformed;
  return finishReplica(C.Success, Final);
}

SimResult ReplicaWorkspace::finishReplica(bool Success,
                                          ReplicaFinalState *Final) {
  SimResult Result;
  Result.NumAgents = K;
  Result.Success = Success;
  Result.TComm = Success ? Time : -1;
  Result.InformedAgents = NumInformed;
  Result.SurvivingAgents = NumAlive;
  Result.InformedFraction =
      NumAlive > 0
          ? static_cast<double>(NumInformed) / static_cast<double>(NumAlive)
          : 0.0;
  Result.Faults = Counters;
  if (Final)
    captureFinalState(*Final);
  return Result;
}

void ReplicaWorkspace::adoptMaster(const ReplicaWorkspace &M, const FastCtx &C,
                                   const Rng &Snapshot) {
  assert(K == M.K && Words == 1 && M.Words == 1 &&
         "slab lane/master shape mismatch");
  assert(FaultsActive && "only a firing fault retires a lane");
  Time = C.Time;
  // prepare() placed the agents at their initial cells; clear that
  // occupancy before adopting the master's mid-run positions (same
  // two-sweep shape as finishFast).
  for (int Id = 0; Id != K; ++Id)
    Occupancy[static_cast<size_t>(Cell[static_cast<size_t>(Id)])] = -1;
  NumInformed = 0;
  for (int Id = 0; Id != K; ++Id) {
    const uint64_t A = C.AgentP[Id];
    Cell[static_cast<size_t>(Id)] = agentCell(A);
    Direction[static_cast<size_t>(Id)] = static_cast<uint8_t>(agentDir(A));
    ControlState[static_cast<size_t>(Id)] =
        static_cast<uint8_t>(agentState(A));
    Occupancy[static_cast<size_t>(agentCell(A))] = static_cast<int16_t>(Id);
    Comm[static_cast<size_t>(Id)] = C.CommW[Id];
    // At the top of any iteration the reference's informed flag equals
    // "comm row full" (exchange recomputed it last step; actions never
    // touch comm rows; at Time == 0 both reduce to K == 1).
    bool Inf = C.CommW[Id] == TailMask;
    Informed[static_cast<size_t>(Id)] = Inf;
    NumInformed += Inf;
  }
  std::copy(M.Colors.begin(), M.Colors.begin() + NumCells, Colors.begin());
  // The master only maintains visit counts when finals are captured; when
  // it does not, nothing downstream can observe them.
  if (C.NeedVisits)
    std::copy(M.VisitCounts.begin(), M.VisitCounts.begin() + NumCells,
              VisitCounts.begin());
  // Alive, Stalled, SurvivorWords, NumAlive and Counters keep prepare()'s
  // fresh values: the retiring fault has not been applied yet — it fires
  // again, identically, when resumeSolo replays this step's draws.
  FaultRng = Snapshot;
}

SimResult ReplicaWorkspace::resumeSolo(ReplicaFinalState *Final) {
  // < (not !=) so a negative MaxSteps terminates instead of wrapping; the
  // CLI-facing validation lives in World::validatePlacements. At the top
  // of every un-solved iteration the reference loop maintains Time == I,
  // so starting I at the current Time resumes an adopted lane exactly
  // where its master left it (and runs the whole replica when Time == 0).
  for (int I = Time; I < Options->MaxSteps; ++I) {
    if (FaultsActive)
      injectFaults();
    exchange();
    if (NumAlive > 0 && NumInformed == NumAlive)
      return finishReplica(true, Final); // Time stays at t_comm.
    applyActions();
    ++Time;
    if (FaultsActive && NumAlive == 0)
      break; // Extinct: the task can never be solved.
  }
  return finishReplica(false, Final);
}

SimResult ReplicaWorkspace::runSolo(
    int ReplicaIndex,
    const std::function<void(const BatchStepView &)> &OnStep,
    const simd::LaneKernel &KN, ReplicaFinalState *Final) {
  if (!OnStep) {
    if (fastEligible()) {
      FastCtx C = beginFast(Final != nullptr);
      (Degree == 6 ? KN.Solo6 : KN.Solo4)(C);
      return finishFast(C, Final);
    }
    return resumeSolo(Final); // Time == 0 right after prepare().
  }

  auto Observe = [&] {
    if (!OnStep)
      return;
    BatchStepView View;
    View.Replica = ReplicaIndex;
    View.Time = Time;
    View.NumAgents = K;
    View.NumCells = NumCells;
    View.WordsPerAgent = Words;
    View.Cells = Cell.data();
    View.Directions = Direction.data();
    View.ControlStates = ControlState.data();
    View.Alive = Alive.data();
    View.Informed = Informed.data();
    View.Comm = Comm.data();
    View.Colors = Colors.data();
    View.Occupancy = Occupancy.data();
    View.NumInformed = NumInformed;
    View.NumSurvivors = NumAlive;
    OnStep(View);
  };

  // < (not !=) so a negative MaxSteps terminates instead of wrapping; the
  // CLI-facing validation lives in World::validatePlacements.
  for (int I = 0; I < Options->MaxSteps; ++I) {
    if (FaultsActive)
      injectFaults();
    exchange();
    bool Solved = NumAlive > 0 && NumInformed == NumAlive;
    Observe();
    if (Solved)
      return finishReplica(true, Final); // Time stays at t_comm.
    applyActions();
    ++Time;
    if (FaultsActive && NumAlive == 0)
      break; // Extinct: the task can never be solved.
  }
  return finishReplica(false, Final);
}

/// One rmaj64 work unit: either a slab (up to 64 mutually slabCompatible
/// replicas sharing one master trajectory) or a single general-path
/// replica that cannot ride a slab (k > 64, bordered, or a grid too large
/// for the narrowed neighbour table).
struct SlabGroup {
  std::vector<int> Members; ///< Replica indices, batch order.
  bool Slab = false;
};

/// Greedy first-occurrence grouping: walk the batch in order, appending
/// each slab-eligible replica to the first compatible group with a free
/// lane, else opening a new group. Buckets are keyed by slabKeyHash, but
/// membership is always decided by the full slabCompatible comparison —
/// the map is probed, never iterated, so its bucket order cannot leak
/// anywhere (and grouping could not change results regardless: every lane
/// is bit-identical to a solo run by construction).
std::vector<SlabGroup>
buildSlabGroups(const std::vector<BatchReplica> &Replicas, bool CanSlab) {
  std::vector<SlabGroup> Groups;
  Groups.reserve(Replicas.size());
  std::unordered_map<uint64_t, std::vector<size_t>> Buckets;
  for (size_t I = 0; I != Replicas.size(); ++I) {
    const BatchReplica &R = Replicas[I];
    if (!CanSlab || !simd::slabLaneEligible(R)) {
      Groups.push_back(SlabGroup{{static_cast<int>(I)}, false});
      continue;
    }
    std::vector<size_t> &Bucket = Buckets[simd::slabKeyHash(R)];
    size_t Found = SIZE_MAX;
    for (size_t G : Bucket) {
      if (Groups[G].Members.size() <
              static_cast<size_t>(simd::SlabLaneCapacity) &&
          simd::slabCompatible(
              Replicas[static_cast<size_t>(Groups[G].Members.front())], R)) {
        Found = G;
        break;
      }
    }
    if (Found == SIZE_MAX) {
      Bucket.push_back(Groups.size());
      Groups.push_back(SlabGroup{{static_cast<int>(I)}, true});
    } else {
      Groups[Found].Members.push_back(static_cast<int>(I));
    }
  }
  return Groups;
}

/// Shared state of one run()'s worker fan-out.
struct RunContext {
  const std::vector<BatchReplica> &Replicas;
  const std::vector<ReplicaPlan> &Plans;
  const BatchRunOptions &Options;
  std::vector<SimResult> &Results;

  // Memory orders: see the ordering contract on BatchRunStats
  // (BatchEngine.h). Both atomics are relaxed — the cursor only needs
  // each index handed out once, the skip tally is reduced after the
  // fan-out joins, and the pool join supplies the publication edge.

  /// Work-stealing cursor: the next replica index to claim (the rmaj64
  /// slab loop uses NextGroup over slab groups instead).
  std::atomic<size_t> Next{0};
  std::atomic<size_t> NextGroup{0};
  std::atomic<uint64_t> Skipped{0};
  // Per-worker instrumentation slots (no sharing, no contention).
  std::vector<uint64_t> PerWorkerReplicas;
  std::vector<double> PerWorkerBusy;
  std::vector<uint64_t> PerWorkerAllocs;
  std::vector<uint64_t> PerWorkerSteadyAllocs;
  std::vector<uint64_t> PerWorkerRetries;
  std::vector<uint64_t> PerWorkerFailed;
  std::vector<uint64_t> PerWorkerSlabs;
  std::vector<uint64_t> PerWorkerSlabLanes;
  std::vector<uint64_t> PerWorkerRetired;
  std::vector<uint64_t> PerWorkerConverged;

  RunContext(const std::vector<BatchReplica> &Replicas,
             const std::vector<ReplicaPlan> &Plans,
             const BatchRunOptions &Options, std::vector<SimResult> &Results,
             size_t NumWorkers)
      : Replicas(Replicas), Plans(Plans), Options(Options), Results(Results),
        PerWorkerReplicas(NumWorkers), PerWorkerBusy(NumWorkers),
        PerWorkerAllocs(NumWorkers), PerWorkerSteadyAllocs(NumWorkers),
        PerWorkerRetries(NumWorkers), PerWorkerFailed(NumWorkers),
        PerWorkerSlabs(NumWorkers), PerWorkerSlabLanes(NumWorkers),
        PerWorkerRetired(NumWorkers), PerWorkerConverged(NumWorkers) {}
};

/// One worker: pulls replicas off the shared counter until it drains.
/// Fast-path replicas fill a small arena of workspaces advanced in
/// lockstep by the run's lane kernel (a finished slot is refilled
/// immediately); general-path replicas (faults, borders, multi-word, huge
/// grids, observers) run solo in between. Every replica writes its own
/// result slot, so neither the schedule nor the kernel can change any
/// result.
void workerLoop(const Torus &T, const std::vector<uint8_t> &BoundaryMask,
                const std::vector<int16_t> &Neighbors16,
                const uint8_t (&TurnMap)[6][4], const simd::LaneKernel &KN,
                RunContext &Ctx, size_t Worker) {
  // det-lint: allow(wall-clock) per-worker busy-time instrumentation only.
  auto Start = std::chrono::steady_clock::now();
  const size_t N = Ctx.Replicas.size();
  const BatchRunOptions &Options = Ctx.Options;
  uint64_t Simulated = 0, SkippedLocal = 0;
  uint64_t RetriesLocal = 0, FailedLocal = 0;

  /// Supervised launch of one claimed replica: the EngineReplica chaos
  /// site runs under per-task retry with capped exponential backoff. True
  /// approves the launch; false abandons the replica (its slot keeps the
  /// default SimResult and OnFailure is notified) so one persistently
  /// failing task degrades the batch instead of killing it. With chaos
  /// compiled out or inactive this is a non-throwing no-op the optimiser
  /// folds away.
  auto Launch = [&](int I) -> bool {
    for (int Retry = 0;; ++Retry) {
      try {
        chaosPoint(ChaosSite::EngineReplica);
        return true;
      } catch (...) {
        if (Retry + 1 >= Options.Retry.MaxAttempts) {
          ++FailedLocal;
          if (Options.OnFailure)
            Options.OnFailure(I);
          return false;
        }
        ++RetriesLocal;
        backoffSleep(Options.Retry, Retry);
      }
    }
  };

  auto FinalSlot = [&](int I) -> ReplicaFinalState * {
    return Options.FinalStates
               ? &(*Options.FinalStates)[static_cast<size_t>(I)]
               : nullptr;
  };
  /// Claims the next un-skipped replica index, or -1 when drained.
  auto Pull = [&]() -> int {
    for (;;) {
      size_t I = Ctx.Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        return -1;
      if (Options.ShouldSkip && Options.ShouldSkip(static_cast<int>(I))) {
        ++SkippedLocal;
        continue;
      }
      return static_cast<int>(I);
    }
  };

  struct Slot {
    ReplicaWorkspace WS;
    FastCtx C;
    int Index = -1;
    bool Active = false;
    Slot(const Torus &T, const std::vector<uint8_t> &B,
         const std::vector<int16_t> &N16, const uint8_t (&TM)[6][4])
        : WS(T, B, N16, TM) {}
  };
  std::deque<Slot> Slots; // Stable addresses; Slot is not movable.

  if (Options.OnStep) {
    // Observer path: one workspace, strict replica order, every callback
    // inline on this (single) worker.
    Slots.emplace_back(T, BoundaryMask, Neighbors16, TurnMap);
    ReplicaWorkspace &WS = Slots.front().WS;
    for (int I; (I = Pull()) >= 0;) {
      if (!Launch(I))
        continue;
      WS.prepare(Ctx.Replicas[static_cast<size_t>(I)],
                 Ctx.Plans[static_cast<size_t>(I)]);
      Ctx.Results[static_cast<size_t>(I)] =
          WS.runSolo(I, Options.OnStep, KN, FinalSlot(I));
      WS.markWarm();
      ++Simulated;
      if (Options.OnResult)
        Options.OnResult(I, Ctx.Results[static_cast<size_t>(I)]);
    }
  } else {
    for (int S = 0; S != LockstepBlock; ++S)
      Slots.emplace_back(T, BoundaryMask, Neighbors16, TurnMap);
    int Active = 0;
    bool Drained = false;

    /// Claims replicas until one is fast-path eligible (activating \p S)
    /// or the counter drains; general-path replicas run solo on the spot.
    auto Refill = [&](Slot &S) {
      while (!Drained) {
        int I = Pull();
        if (I < 0) {
          Drained = true;
          break;
        }
        if (!Launch(I))
          continue;
        S.WS.prepare(Ctx.Replicas[static_cast<size_t>(I)],
                     Ctx.Plans[static_cast<size_t>(I)]);
        if (S.WS.fastEligible()) {
          S.Index = I;
          S.C = S.WS.beginFast(FinalSlot(I) != nullptr);
          S.Active = true;
          ++Active;
          return;
        }
        Ctx.Results[static_cast<size_t>(I)] =
            S.WS.runSolo(I, {}, KN, FinalSlot(I));
        S.WS.markWarm();
        ++Simulated;
        if (Options.OnResult)
          Options.OnResult(I, Ctx.Results[static_cast<size_t>(I)]);
      }
    };
    auto Finalize = [&](Slot &S) {
      // The lockstep pipeline starts up to LockstepBlock replicas before
      // their predecessors' results land, so a ShouldSkip flip can arrive
      // while a replica is in flight. Re-poll at completion and discard
      // the result of a now-vetoed replica (slot keeps the default
      // SimResult, no OnResult) — pruning is then always at least as
      // aggressive as a serial, unpipelined sweep.
      if (Options.ShouldSkip && Options.ShouldSkip(S.Index)) {
        // finishFast must still run — it restores the workspace invariants
        // (zeroed CellComm, obstacle-free stamps) the next replica relies
        // on — but its result is dropped.
        S.WS.finishFast(S.C, nullptr);
        ++SkippedLocal;
      } else {
        Ctx.Results[static_cast<size_t>(S.Index)] =
            S.WS.finishFast(S.C, FinalSlot(S.Index));
        ++Simulated;
        if (Options.OnResult)
          Options.OnResult(S.Index,
                           Ctx.Results[static_cast<size_t>(S.Index)]);
      }
      S.WS.markWarm();
      S.Active = false;
      --Active;
    };

    const bool Tri = T.degree() == 6;
    const simd::LaneStepFn Step = Tri ? KN.Step6 : KN.Step4;
    const simd::LaneSoloFn Solo = Tri ? KN.Solo6 : KN.Solo4;
    FastCtx *Lanes[LockstepBlock];

    for (Slot &S : Slots)
      Refill(S);
    while (Active > 0) {
      if (Active == 1 && Drained) {
        // Straggler: no refills can come, so finish the last replica with
        // the kernel's tight single-replica loop.
        for (Slot &S : Slots)
          if (S.Active) {
            Solo(S.C);
            Finalize(S);
          }
        break;
      }
      int NumLanes = 0;
      for (Slot &S : Slots)
        if (S.Active)
          Lanes[NumLanes++] = &S.C;
      Step(Lanes, NumLanes);
      for (Slot &S : Slots) {
        if (!S.Active)
          continue;
        if (S.C.Done) {
          Finalize(S);
          if (!Drained)
            Refill(S);
        }
      }
    }
  }

  uint64_t Allocs = 0, Steady = 0;
  for (Slot &S : Slots) {
    Allocs += S.WS.allocations();
    Steady += S.WS.steadyAllocations();
  }
  Ctx.PerWorkerReplicas[Worker] = Simulated;
  Ctx.PerWorkerAllocs[Worker] = Allocs;
  Ctx.PerWorkerSteadyAllocs[Worker] = Steady;
  Ctx.PerWorkerRetries[Worker] = RetriesLocal;
  Ctx.PerWorkerFailed[Worker] = FailedLocal;
  Ctx.Skipped.fetch_add(SkippedLocal, std::memory_order_relaxed);
  Ctx.PerWorkerBusy[Worker] = secondsSince(Start);
}

/// One rmaj64 worker: pulls slab *groups* off the shared group cursor.
/// Each slab steps one master trajectory in the lockstep arena (the
/// sliced64 kernel advances the resident masters exactly as workerLoop
/// advances independent replicas); every step, each enrolled lane draws
/// its private fault stream in reference order and retires to the general
/// path the moment a draw fires. Lanes that never fire share their
/// master's result at completion. This inverts the engine⇄kernel contract
/// of workerLoop — the unit of lockstep is the replica group, and the slab
/// loop (not the per-replica driver) owns the draw/step/retire sequencing
/// — but, like there, every replica writes its own result slot and is
/// bit-identical to a solo reference run.
void workerLoopSlabs(const Torus &T, const std::vector<uint8_t> &BoundaryMask,
                     const std::vector<int16_t> &Neighbors16,
                     const uint8_t (&TurnMap)[6][4],
                     const simd::LaneKernel &KN,
                     const std::vector<SlabGroup> &Groups, RunContext &Ctx,
                     size_t Worker) {
  // det-lint: allow(wall-clock) per-worker busy-time instrumentation only.
  auto Start = std::chrono::steady_clock::now();
  const BatchRunOptions &Options = Ctx.Options;
  const int NumCells = T.numCells();
  const int Degree = T.degree();
  uint64_t Simulated = 0, SkippedLocal = 0;
  uint64_t RetriesLocal = 0, FailedLocal = 0;
  uint64_t SlabsLocal = 0, SlabLanesLocal = 0;
  uint64_t RetiredLocal = 0, ConvergedLocal = 0;

  // Same supervised-launch contract as workerLoop: chaos site + retry
  // policy per replica, abandonment after MaxAttempts.
  auto Launch = [&](int I) -> bool {
    for (int Retry = 0;; ++Retry) {
      try {
        chaosPoint(ChaosSite::EngineReplica);
        return true;
      } catch (...) {
        if (Retry + 1 >= Options.Retry.MaxAttempts) {
          ++FailedLocal;
          if (Options.OnFailure)
            Options.OnFailure(I);
          return false;
        }
        ++RetriesLocal;
        backoffSleep(Options.Retry, Retry);
      }
    }
  };
  auto FinalSlot = [&](int I) -> ReplicaFinalState * {
    return Options.FinalStates
               ? &(*Options.FinalStates)[static_cast<size_t>(I)]
               : nullptr;
  };

  /// One enrolled replica riding a slab master.
  struct SlabLane {
    int Index = -1;
    const SimOptions *O = nullptr;
    Rng R{0}; ///< Private fault stream, advanced a step at a time.
    bool Faulty = false;
  };
  struct SlabSlot {
    ReplicaWorkspace WS; ///< The master trajectory's workspace.
    FastCtx C;
    std::vector<SlabLane> Lanes;
    bool Active = false;
    SlabSlot(const Torus &T, const std::vector<uint8_t> &B,
             const std::vector<int16_t> &N16, const uint8_t (&TM)[6][4])
        : WS(T, B, N16, TM) {}
  };
  std::deque<SlabSlot> Slots; // Stable addresses; SlabSlot is not movable.
  for (int S = 0; S != LockstepBlock; ++S)
    Slots.emplace_back(T, BoundaryMask, Neighbors16, TurnMap);
  // One scratch workspace per worker finishes retired lanes serially.
  ReplicaWorkspace RetireWS(T, BoundaryMask, Neighbors16, TurnMap);

  int Active = 0;
  bool Drained = false;

  /// Lane completion: the slab pipeline keeps many replicas in flight, so
  /// (like workerLoop's Finalize) ShouldSkip is re-polled at completion
  /// and a now-vetoed lane's result is discarded.
  auto CompleteLane = [&](int Index, const SimResult &Res,
                          const ReplicaWorkspace &WS) {
    if (Options.ShouldSkip && Options.ShouldSkip(Index)) {
      ++SkippedLocal;
      return;
    }
    Ctx.Results[static_cast<size_t>(Index)] = Res;
    if (ReplicaFinalState *F = FinalSlot(Index))
      WS.captureFinal(*F);
    ++Simulated;
    if (Options.OnResult)
      Options.OnResult(Index, Ctx.Results[static_cast<size_t>(Index)]);
  };

  /// Claims groups until a slab activates in \p S or the cursor drains;
  /// general-path singletons (k > 64, bordered, huge grids) run solo on
  /// the spot, exactly as workerLoop treats fast-ineligible replicas.
  auto Activate = [&](SlabSlot &S) {
    while (!Drained) {
      size_t G = Ctx.NextGroup.fetch_add(1, std::memory_order_relaxed);
      if (G >= Groups.size()) {
        Drained = true;
        break;
      }
      const SlabGroup &Grp = Groups[G];
      if (!Grp.Slab) {
        int I = Grp.Members.front();
        if (Options.ShouldSkip && Options.ShouldSkip(I)) {
          ++SkippedLocal;
          continue;
        }
        if (!Launch(I))
          continue;
        S.WS.prepare(Ctx.Replicas[static_cast<size_t>(I)],
                     Ctx.Plans[static_cast<size_t>(I)]);
        Ctx.Results[static_cast<size_t>(I)] =
            S.WS.runSolo(I, {}, KN, FinalSlot(I));
        S.WS.markWarm();
        ++Simulated;
        if (Options.OnResult)
          Options.OnResult(I, Ctx.Results[static_cast<size_t>(I)]);
        continue;
      }
      S.Lanes.clear();
      for (int I : Grp.Members) {
        if (Options.ShouldSkip && Options.ShouldSkip(I)) {
          ++SkippedLocal;
          continue;
        }
        if (!Launch(I))
          continue;
        const SimOptions &O = *Ctx.Replicas[static_cast<size_t>(I)].Options;
        // Seeded exactly as prepare() seeds FaultRng: lockstep draws and a
        // retired lane's replay read one and the same stream.
        S.Lanes.push_back(SlabLane{I, &O, Rng(O.Faults.Seed), O.Faults.any()});
      }
      if (S.Lanes.empty())
        continue;
      const int First = S.Lanes.front().Index;
      // Any enrolled member works as the master blueprint — compatibility
      // is what the slab key means — and faults are suppressed so the
      // master is the shared fault-free trajectory.
      S.WS.prepare(Ctx.Replicas[static_cast<size_t>(First)],
                   Ctx.Plans[static_cast<size_t>(First)],
                   /*SuppressFaults=*/true);
      assert(S.WS.fastEligible() && "slab master must ride the fast path");
      S.C = S.WS.beginFast(Options.FinalStates != nullptr);
      S.Active = true;
      ++Active;
      ++SlabsLocal;
      SlabLanesLocal += S.Lanes.size();
      return;
    }
  };

  /// Per-step fault sweep over a slab's lanes, before the master executes
  /// the step: the reference draws step C.Time's faults against the state
  /// at the top of that iteration, which is exactly the master's current
  /// state. A firing lane retires — prepare, adopt the master at C.Time,
  /// restore the pre-step RNG snapshot, and replay the rest of the run on
  /// the general path.
  auto DrawAndRetire = [&](SlabSlot &S) {
    size_t Keep = 0;
    const size_t NumL = S.Lanes.size();
    for (size_t L = 0; L != NumL; ++L) {
      SlabLane &Lane = S.Lanes[L];
      bool Fired = false;
      if (Lane.Faulty) {
        const Rng Snapshot = Lane.R;
        Fired = simd::drawStepFaults(Lane.R, Lane.O->Faults,
                                     Lane.O->ColorsEnabled, S.C.K, NumCells,
                                     Degree, T, S.C.AgentP);
        if (Fired) {
          RetireWS.prepare(Ctx.Replicas[static_cast<size_t>(Lane.Index)],
                           Ctx.Plans[static_cast<size_t>(Lane.Index)]);
          RetireWS.adoptMaster(S.WS, S.C, Snapshot);
          SimResult Res = RetireWS.resumeSolo(nullptr);
          RetireWS.markWarm();
          ++RetiredLocal;
          CompleteLane(Lane.Index, Res, RetireWS);
        }
      }
      if (!Fired)
        S.Lanes[Keep++] = Lane;
    }
    S.Lanes.resize(Keep);
  };

  /// Master finished (solved or cut off): every remaining lane shares its
  /// result. Their fault counters are provably zero — a nonzero counter
  /// means a draw fired, which would have retired the lane.
  auto FinalizeSlab = [&](SlabSlot &S) {
    SimResult MasterRes = S.WS.finishFast(S.C, nullptr);
    ConvergedLocal += S.Lanes.size();
    for (const SlabLane &Lane : S.Lanes)
      CompleteLane(Lane.Index, MasterRes, S.WS);
    S.Lanes.clear();
    S.WS.markWarm();
    S.Active = false;
    --Active;
  };

  const bool Tri = Degree == 6;
  const simd::LaneStepFn Step = Tri ? KN.Step6 : KN.Step4;
  const simd::LaneSoloFn Solo = Tri ? KN.Solo6 : KN.Solo4;
  FastCtx *Lanes[LockstepBlock];

  for (;;) {
    // All (re)activation happens here and only here, before the draw
    // sweep: a freshly enrolled slab's lanes must draw their step-0
    // faults before the master executes step 0, so a slot may never be
    // refilled between the sweep and Step below.
    if (!Drained)
      for (SlabSlot &S : Slots)
        if (!S.Active)
          Activate(S);
    if (Active == 0)
      break;
    if (Active == 1 && Drained) {
      // Straggler: if no lane can fire, the master may run the kernel's
      // tight solo loop to completion. A faulty lane forces the per-step
      // sweep below instead.
      SlabSlot *Last = nullptr;
      for (SlabSlot &S : Slots)
        if (S.Active)
          Last = &S;
      bool AnyFaulty = false;
      for (const SlabLane &Lane : Last->Lanes)
        AnyFaulty |= Lane.Faulty;
      if (!AnyFaulty) {
        Solo(Last->C);
        FinalizeSlab(*Last);
        break;
      }
    }
    // Draws precede the master's step: faults of iteration C.Time fire
    // against the state at the top of that iteration.
    for (SlabSlot &S : Slots) {
      if (!S.Active || S.C.Done)
        continue;
      DrawAndRetire(S);
      if (S.Lanes.empty()) {
        // Every lane retired; the master represents nobody. finishFast
        // still runs — it restores the workspace invariants (zeroed
        // CellComm, obstacle-free stamps) — but its result is dropped.
        S.WS.finishFast(S.C, nullptr);
        S.WS.markWarm();
        S.Active = false;
        --Active;
      }
    }
    int NumLanes = 0;
    for (SlabSlot &S : Slots)
      if (S.Active && !S.C.Done)
        Lanes[NumLanes++] = &S.C;
    if (NumLanes > 0)
      Step(Lanes, NumLanes);
    for (SlabSlot &S : Slots) {
      if (!S.Active || !S.C.Done)
        continue;
      FinalizeSlab(S);
    }
  }

  uint64_t Allocs = RetireWS.allocations();
  uint64_t Steady = RetireWS.steadyAllocations();
  for (SlabSlot &S : Slots) {
    Allocs += S.WS.allocations();
    Steady += S.WS.steadyAllocations();
  }
  Ctx.PerWorkerReplicas[Worker] = Simulated;
  Ctx.PerWorkerAllocs[Worker] = Allocs;
  Ctx.PerWorkerSteadyAllocs[Worker] = Steady;
  Ctx.PerWorkerRetries[Worker] = RetriesLocal;
  Ctx.PerWorkerFailed[Worker] = FailedLocal;
  Ctx.PerWorkerSlabs[Worker] = SlabsLocal;
  Ctx.PerWorkerSlabLanes[Worker] = SlabLanesLocal;
  Ctx.PerWorkerRetired[Worker] = RetiredLocal;
  Ctx.PerWorkerConverged[Worker] = ConvergedLocal;
  Ctx.Skipped.fetch_add(SkippedLocal, std::memory_order_relaxed);
  Ctx.PerWorkerBusy[Worker] = secondsSince(Start);
}

} // namespace

std::vector<SimResult>
BatchEngine::run(const std::vector<BatchReplica> &Replicas,
                 const BatchRunOptions &Options) const {
  std::vector<SimResult> Results(Replicas.size());
  // Resolve the lane kernel once per run: CA2A_FORCE_BACKEND > requested >
  // Auto, clamped to what this binary and CPU support (sim/simd/Backend.h).
  const SimdBackend Backend = resolveSimdBackend(Options.Backend);
  const simd::LaneKernel &KN = simd::laneKernel(Backend);
  if (Replicas.empty()) {
    if (Options.Stats) {
      *Options.Stats = BatchRunStats();
      Options.Stats->BackendUsed = Backend;
    }
    return Results;
  }
  if (Options.FinalStates)
    Options.FinalStates->assign(Replicas.size(), ReplicaFinalState());

  // Compile phase: every distinct genome exactly once, single-threaded,
  // before the fan-out — the tables are then shared read-only.
  GenomeCompileCache Cache;
  std::vector<ReplicaPlan> Plans(Replicas.size());
  for (size_t I = 0; I != Replicas.size(); ++I) {
    const BatchReplica &R = Replicas[I];
    assert(R.A && R.Placements && R.Options && "incomplete replica spec");
    const Genome *WantB = R.B ? R.B : R.A;
    assert(R.A->dims() == WantB->dims() &&
           "mixed genome dimensions in one replica");
    ReplicaPlan &P = Plans[I];
    P.TabA = Cache.tableFor(R.A);
    P.TabB = Cache.tableFor(WantB);
    P.Policy = R.B ? R.Policy : GenomePolicy::Single;
    P.States = R.A->dims().States;
    P.NumColors = R.A->dims().Colors;
  }

  // An observer forces inline sequential execution: callbacks see replicas
  // in order and never run concurrently.
  size_t NumWorkers =
      Options.OnStep ? 1 : std::max<size_t>(1, Options.NumWorkers);
  NumWorkers = std::min(NumWorkers, Replicas.size());

  // rmaj64: group the batch into clone slabs up front (deterministic,
  // single-threaded; workers then steal whole groups). The observer path
  // keeps workerLoop's strict sequential order, where slabs cannot form.
  const bool SlabMode =
      Backend == SimdBackend::RMaj64 && !Options.OnStep;
  std::vector<SlabGroup> Groups;
  if (SlabMode) {
    Groups = buildSlabGroups(Replicas, !Neighbors16.empty());
    NumWorkers = std::min(NumWorkers, Groups.size());
  }

  RunContext Ctx(Replicas, Plans, Options, Results, NumWorkers);
  auto Body = [&](size_t Worker) {
    if (SlabMode)
      workerLoopSlabs(T, BoundaryMask, Neighbors16, TurnMap, KN, Groups, Ctx,
                      Worker);
    else
      workerLoop(T, BoundaryMask, Neighbors16, TurnMap, KN, Ctx, Worker);
  };
  if (NumWorkers <= 1)
    Body(0);
  else
    parallelFor(NumWorkers, NumWorkers, Body);

  if (Options.Stats) {
    BatchRunStats &S = *Options.Stats;
    S = BatchRunStats();
    S.WorkersUsed = NumWorkers;
    S.BackendUsed = Backend;
    S.CompileHits = Cache.hits();
    S.CompileMisses = Cache.misses();
    // Relaxed is sound: the workers that wrote these finished before the
    // parallelFor join above, which is the release/acquire edge.
    S.ReplicasSkipped = Ctx.Skipped.load(std::memory_order_relaxed);
    S.ReplicasPerWorker = Ctx.PerWorkerReplicas;
    S.WorkerBusySeconds = Ctx.PerWorkerBusy;
    for (uint64_t R : Ctx.PerWorkerReplicas)
      S.ReplicasSimulated += R;
    for (uint64_t A : Ctx.PerWorkerAllocs)
      S.Allocations += A;
    for (uint64_t A : Ctx.PerWorkerSteadyAllocs)
      S.SteadyAllocations += A;
    for (uint64_t R : Ctx.PerWorkerRetries)
      S.TaskRetries += R;
    for (uint64_t F : Ctx.PerWorkerFailed)
      S.ReplicasFailed += F;
    for (uint64_t V : Ctx.PerWorkerSlabs)
      S.SlabsFormed += V;
    for (uint64_t V : Ctx.PerWorkerSlabLanes)
      S.SlabLanesEnrolled += V;
    for (uint64_t V : Ctx.PerWorkerRetired)
      S.LanesRetiredEarly += V;
    for (uint64_t V : Ctx.PerWorkerConverged)
      S.LanesConverged += V;
  }
  return Results;
}
