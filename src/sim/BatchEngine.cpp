//===- sim/BatchEngine.cpp - Batched SoA CA simulation engine -------------===//
//
// The replica core below is a line-for-line semantic port of World's
// injectFaults / exchangeCommunication / applyActions / run, restructured
// into flat arrays. Every RNG draw happens in the same order with the same
// arguments as in World, so one fault seed produces one identical faulty
// trajectory in both engines — the property the differential suite pins.
//
//===----------------------------------------------------------------------===//

#include "sim/BatchEngine.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstring>

using namespace ca2a;

const char *ca2a::engineKindName(EngineKind K) {
  return K == EngineKind::Reference ? "reference" : "batch";
}

bool ca2a::parseEngineKind(const std::string &Text, EngineKind &K) {
  std::string Lower = Text;
  for (char &C : Lower)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Lower == "reference" || Lower == "ref" || Lower == "world") {
    K = EngineKind::Reference;
    return true;
  }
  if (Lower == "batch") {
    K = EngineKind::Batch;
    return true;
  }
  return false;
}

BatchEngine::BatchEngine(const Torus &T) : T(T) {
  BoundaryMask.resize(static_cast<size_t>(T.numCells()), 0);
  int Degree = T.degree();
  for (int Cell = 0; Cell != T.numCells(); ++Cell) {
    uint8_t Mask = 0;
    for (int D = 0; D != Degree; ++D)
      if (T.crossesBoundary(Cell, static_cast<uint8_t>(D)))
        Mask |= static_cast<uint8_t>(1u << D);
    BoundaryMask[static_cast<size_t>(Cell)] = Mask;
  }
  for (uint8_t Dir = 0; Dir != static_cast<uint8_t>(Degree); ++Dir)
    for (uint8_t Code = 0; Code != NumTurnCodes; ++Code)
      TurnMap[Dir][Code] = applyTurn(T.kind(), Dir, static_cast<Turn>(Code));
  if (T.numCells() <= INT16_MAX) {
    size_t TableSize =
        static_cast<size_t>(T.numCells()) * static_cast<size_t>(Degree);
    const int32_t *Wide = T.neighbors(0);
    Neighbors16.resize(TableSize);
    for (size_t I = 0; I != TableSize; ++I)
      Neighbors16[I] = static_cast<int16_t>(Wide[I]);
  }
}

namespace {

/// One genome slot, flattened for branch-free lookup. Compiled once per
/// replica run (the "32-entry transition table" at paper dimensions),
/// cached across replicas that share the same Genome object.
struct PackedEntry {
  uint8_t NextState = 0;
  uint8_t Move = 0;
  uint8_t SetColor = 0;
  uint8_t Turn = 0;
};

/// Everything the single-word fast path touches, gathered into one struct
/// of raw pointers so several independent replicas can be advanced in
/// lockstep: interleaving their per-agent work fills the pipeline stalls
/// (L1 latency, store forwarding) any single replica's dependence chains
/// leave open.
struct FastCtx {
  const int16_t *NB = nullptr; ///< Narrowed neighbour table, stride DegT.
  uint64_t *CommW = nullptr;   ///< One comm word per agent.
  uint64_t *CellW = nullptr;   ///< Comm word of each cell's occupant (or 0).
  int32_t *CellP = nullptr;
  uint8_t *DirP = nullptr;
  uint8_t *StateP = nullptr;
  uint8_t *InformedP = nullptr;
  uint8_t *ColorsP = nullptr;
  int16_t *OccP = nullptr;
  int32_t *VisitP = nullptr;
  const uint8_t *ObstP = nullptr;
  int32_t *ClaimP = nullptr;
  int32_t *FrontP = nullptr;
  int32_t *TouchedP = nullptr;
  uint8_t *CanMoveP = nullptr;
  PackedEntry *SelP = nullptr;
  const PackedEntry *TabA = nullptr, *TabB = nullptr;
  const uint8_t (*TurnMap)[4] = nullptr;
  uint64_t Full = 0;
  GenomePolicy Policy = GenomePolicy::Single;
  int K = 0, St = 0, NC = 0, MaxSteps = 0;
  bool Gaze = false, ColorsOn = false;
  // Per-step scratch and progress.
  const PackedEntry *TabEven = nullptr, *TabOdd = nullptr;
  int NewInformed = 0, NumTouched = 0, Time = 0;
  bool Done = false, Success = false;
};

/// Per-worker replica executor. Owns every scratch buffer, so consecutive
/// replicas on one worker reuse memory instead of reallocating (World pays
/// 2k+ BitVector allocations per reset; this pays none after warm-up).
class ReplicaRunner {
public:
  ReplicaRunner(const Torus &T, const std::vector<uint8_t> &BoundaryMask,
                const std::vector<int16_t> &Neighbors16,
                const uint8_t (&TurnMap)[6][4])
      : T(T), BoundaryMask(BoundaryMask.data()), TurnMap(TurnMap),
        NeighborBase(T.neighbors(0)),
        Neighbor16Base(Neighbors16.empty() ? nullptr : Neighbors16.data()),
        NumCells(T.numCells()), Degree(T.degree()) {
    Colors.resize(static_cast<size_t>(NumCells));
    Occupancy.resize(static_cast<size_t>(NumCells));
    VisitCounts.resize(static_cast<size_t>(NumCells));
    ObstacleMask.resize(static_cast<size_t>(NumCells));
    // Both step loops restore the all-minus-one claim invariant before
    // every early exit, so claims are initialised once, not per reset.
    ClaimMinId.assign(static_cast<size_t>(NumCells), -1);
    CellComm.resize(static_cast<size_t>(NumCells));
  }

  SimResult runReplica(const BatchReplica &R, int ReplicaIndex,
                       const std::function<void(const BatchStepView &)> &OnStep,
                       ReplicaFinalState *Final);

private:
  /// Compile + reset: ready the runner for a replica's step loop.
  void prepare(const BatchReplica &R) {
    compileGenomes(R);
    reset(R);
  }
  /// Package the runner's terminal state as the SimResult the reference
  /// engine would have produced.
  SimResult finishReplica(bool Success, ReplicaFinalState *Final);
  void compileGenomes(const BatchReplica &R);
  void reset(const BatchReplica &R);
  /// Specialised step loop for the dominant configuration: no faults, no
  /// borders, k <= 64 (single comm word), no observer. \p DegT lets the
  /// compiler unroll the neighbour-OR. Returns true with \p Result filled
  /// on success; false at the MaxSteps cutoff.
  template <int DegT> bool runFastSingleWord();
  /// Bundle the fast-path pointers/parameters (and seed CellComm from the
  /// current agent positions).
  FastCtx makeFastCtx();
  /// Copy a finished FastCtx's progress back into the runner.
  void absorbFastCtx(const FastCtx &C) {
    Time = C.Time;
    NumInformed = C.NewInformed;
  }
  void injectFaults();
  void exchange();
  void applyActions();
  bool rowInformedAllAlive(const uint64_t *Row) const;
  bool rowContainsSurvivors(const uint64_t *Row) const;
  void captureFinalState(ReplicaFinalState &Out) const;

  const Torus &T;
  const uint8_t *BoundaryMask;
  const uint8_t (&TurnMap)[6][4];
  const int32_t *NeighborBase;   ///< Flat neighbour table, stride = degree.
  const int16_t *Neighbor16Base; ///< Narrowed copy; null on huge grids.
  int NumCells;
  int Degree;

  // Compiled per replica run.
  std::vector<PackedEntry> TableA, TableB;
  const Genome *CachedA = nullptr; ///< Pointer-identity compile cache.
  const Genome *CachedB = nullptr;
  GenomePolicy Policy = GenomePolicy::Single;
  int States = 0;
  int NumColors = 0;
  const SimOptions *Options = nullptr;

  // Replica state, SoA.
  int K = 0;     ///< Agents.
  int Words = 0; ///< uint64_t words per communication row.
  uint64_t TailMask = ~uint64_t(0);
  std::vector<int32_t> Cell;
  std::vector<uint8_t> Direction;
  std::vector<uint8_t> ControlState;
  std::vector<uint8_t> Alive;
  std::vector<uint8_t> Informed;
  std::vector<uint8_t> Stalled;
  std::vector<uint64_t> Comm, CommNext; ///< K x Words, contiguous rows.
  std::vector<uint64_t> SurvivorWords;  ///< One row: bit per live agent.
  /// Fast path only: the comm word of the agent occupying each cell (0 for
  /// empty cells), so the exchange ORs neighbour cells unconditionally
  /// instead of branching on occupancy.
  std::vector<uint64_t> CellComm;

  std::vector<uint8_t> Colors;
  std::vector<int16_t> Occupancy;
  std::vector<int32_t> VisitCounts;
  std::vector<uint8_t> ObstacleMask;

  // Per-step scratch.
  std::vector<int32_t> ClaimMinId;
  std::vector<int32_t> TouchedCells;
  std::vector<int32_t> FrontCell;
  std::vector<uint8_t> Input;
  std::vector<uint8_t> CanMove;
  std::vector<uint8_t> Skip;
  /// Fast path only: the table entry each agent will execute, resolved
  /// against the final (blocked-corrected) input during pass 1.
  std::vector<PackedEntry> Selected;

  Rng FaultRng{0};
  bool FaultsActive = false;
  FaultStats Counters;
  int NumAlive = 0;
  int NumInformed = 0;
  int Time = 0;
};

void ReplicaRunner::compileGenomes(const BatchReplica &R) {
  const Genome &A = *R.A;
  const Genome &B = R.B ? *R.B : *R.A;
  assert(A.dims() == B.dims() && "mixed genome dimensions in one replica");
  States = A.dims().States;
  NumColors = A.dims().Colors;
  auto Compile = [](const Genome &G, std::vector<PackedEntry> &Table) {
    const GenomeDims &D = G.dims();
    Table.resize(static_cast<size_t>(D.length()));
    for (int I = 0; I != D.numInputs(); ++I)
      for (int S = 0; S != D.States; ++S) {
        const GenomeEntry &E = G.entry(I, S);
        PackedEntry &P = Table[static_cast<size_t>(I * D.States + S)];
        P.NextState = E.NextState;
        P.Move = E.Act.Move ? 1 : 0;
        P.SetColor = E.Act.SetColor;
        P.Turn = static_cast<uint8_t>(E.Act.TurnCode);
      }
  };
  if (CachedA != R.A) {
    Compile(A, TableA);
    CachedA = R.A;
  }
  const Genome *WantB = R.B ? R.B : R.A;
  if (CachedB != WantB) {
    Compile(B, TableB);
    CachedB = WantB;
  }
  Policy = R.B ? R.Policy : GenomePolicy::Single;
}

void ReplicaRunner::reset(const BatchReplica &R) {
  const SimOptions &O = *R.Options;
  Options = &O;
  Time = 0;

  FaultsActive = O.Faults.any();
  FaultRng = Rng(O.Faults.Seed);
  Counters = FaultStats();

  std::fill(ObstacleMask.begin(), ObstacleMask.end(), 0);
  for (Coord Obstacle : O.Obstacles)
    ObstacleMask[static_cast<size_t>(T.indexOf(Obstacle))] = 1;

  std::fill(Colors.begin(), Colors.end(), 0);
  std::fill(Occupancy.begin(), Occupancy.end(), int16_t(-1));
  std::fill(VisitCounts.begin(), VisitCounts.end(), 0);

  const std::vector<Placement> &Placements = *R.Placements;
  K = static_cast<int>(Placements.size());
  TouchedCells.assign(static_cast<size_t>(K), 0); // >= max claims per step.
  assert(K >= 1 && K <= NumCells && "replica agent count out of range");
  Words = (K + 63) / 64;
  TailMask = (K % 64) ? ((uint64_t(1) << (K % 64)) - 1) : ~uint64_t(0);

  size_t SK = static_cast<size_t>(K);
  Cell.resize(SK);
  Direction.resize(SK);
  ControlState.resize(SK);
  Alive.assign(SK, 1);
  Informed.assign(SK, K == 1 ? 1 : 0);
  Stalled.assign(SK, 0);
  FrontCell.resize(SK);
  Input.resize(SK);
  CanMove.resize(SK);
  Selected.resize(SK);
  Skip.resize(SK);
  Comm.assign(SK * static_cast<size_t>(Words), 0);
  CommNext.assign(SK * static_cast<size_t>(Words), 0);
  SurvivorWords.assign(static_cast<size_t>(Words), ~uint64_t(0));
  SurvivorWords[static_cast<size_t>(Words) - 1] = TailMask;

  for (int Id = 0; Id != K; ++Id) {
    const Placement &P = Placements[static_cast<size_t>(Id)];
    int C = T.indexOf(P.Pos);
    assert(P.Direction < Degree && "placement direction out of range");
    assert(Occupancy[static_cast<size_t>(C)] < 0 &&
           "two agents placed on one cell");
    assert(!ObstacleMask[static_cast<size_t>(C)] &&
           "agent placed on an obstacle");
    Cell[static_cast<size_t>(Id)] = C;
    Direction[static_cast<size_t>(Id)] = P.Direction;
    ControlState[static_cast<size_t>(Id)] = O.Start.stateFor(Id);
    Comm[static_cast<size_t>(Id) * Words + static_cast<size_t>(Id) / 64] |=
        uint64_t(1) << (Id % 64);
    Occupancy[static_cast<size_t>(C)] = static_cast<int16_t>(Id);
    ++VisitCounts[static_cast<size_t>(C)];
  }
  NumAlive = K;
  NumInformed = (K == 1) ? 1 : 0;
}

void ReplicaRunner::injectFaults() {
  // Mirrors World::injectFaults draw-for-draw: deaths, stalls, colour
  // flips, in agent/cell order; zero-probability processes draw nothing.
  const FaultModel &F = Options->Faults;
  if (F.DeathProbability > 0.0) {
    for (int Id = 0; Id != K; ++Id) {
      if (!Alive[static_cast<size_t>(Id)] ||
          !FaultRng.bernoulli(F.DeathProbability))
        continue;
      Alive[static_cast<size_t>(Id)] = 0;
      Informed[static_cast<size_t>(Id)] = 0;
      Occupancy[static_cast<size_t>(Cell[static_cast<size_t>(Id)])] = -1;
      SurvivorWords[static_cast<size_t>(Id) / 64] &=
          ~(uint64_t(1) << (Id % 64));
      --NumAlive;
      ++Counters.Deaths;
    }
  }
  if (F.StallProbability > 0.0) {
    for (int Id = 0; Id != K; ++Id) {
      Stalled[static_cast<size_t>(Id)] =
          Alive[static_cast<size_t>(Id)] &&
                  FaultRng.bernoulli(F.StallProbability)
              ? 1
              : 0;
      Counters.Stalls += Stalled[static_cast<size_t>(Id)];
    }
  }
  if (F.ColorFlipProbability > 0.0 && Options->ColorsEnabled) {
    for (size_t C = 0, E = Colors.size(); C != E; ++C) {
      if (!FaultRng.bernoulli(F.ColorFlipProbability))
        continue;
      int Replacement = static_cast<int>(
          FaultRng.uniformInt(static_cast<uint64_t>(NumColors - 1)));
      if (Replacement >= Colors[C])
        ++Replacement;
      Colors[C] = static_cast<uint8_t>(Replacement);
      ++Counters.ColorFlips;
    }
  }
}

bool ReplicaRunner::rowInformedAllAlive(const uint64_t *Row) const {
  for (int W = 0; W != Words - 1; ++W)
    if (Row[W] != ~uint64_t(0))
      return false;
  return Row[Words - 1] == TailMask;
}

bool ReplicaRunner::rowContainsSurvivors(const uint64_t *Row) const {
  for (int W = 0; W != Words; ++W)
    if ((Row[W] & SurvivorWords[static_cast<size_t>(W)]) !=
        SurvivorWords[static_cast<size_t>(W)])
      return false;
  return true;
}

void ReplicaRunner::exchange() {
  const SimOptions &O = *Options;
  const FaultModel &F = O.Faults;
  bool DropsActive = FaultsActive && F.LinkDropProbability > 0.0;
  bool Bordered = O.Bordered;
  const int W = Words;
  for (int Id = 0; Id != K; ++Id) {
    uint64_t *Next = &CommNext[static_cast<size_t>(Id) * W];
    const uint64_t *Own = &Comm[static_cast<size_t>(Id) * W];
    std::memcpy(Next, Own, static_cast<size_t>(W) * sizeof(uint64_t));
    if (!Alive[static_cast<size_t>(Id)])
      continue; // Frozen vector: dead agents neither read nor are read.
    int C = Cell[static_cast<size_t>(Id)];
    const int32_t *Neighbors = &NeighborBase[static_cast<size_t>(C) * Degree];
    uint8_t Seam = Bordered ? BoundaryMask[static_cast<size_t>(C)] : 0;
    for (int D = 0; D != Degree; ++D) {
      if (Bordered && ((Seam >> D) & 1))
        continue;
      if (DropsActive &&
          (!F.LinkFilter ||
           F.LinkFilter(T, C, static_cast<uint8_t>(D))) &&
          FaultRng.bernoulli(F.LinkDropProbability)) {
        ++Counters.DroppedLinks;
        continue;
      }
      int NeighborAgent = Occupancy[static_cast<size_t>(Neighbors[D])];
      if (NeighborAgent >= 0) {
        const uint64_t *Src =
            &Comm[static_cast<size_t>(NeighborAgent) * W];
        for (int I = 0; I != W; ++I)
          Next[I] |= Src[I];
      }
    }
  }
  std::swap(Comm, CommNext);
  NumInformed = 0;
  if (NumAlive == K) {
    for (int Id = 0; Id != K; ++Id) {
      bool Inf = rowInformedAllAlive(&Comm[static_cast<size_t>(Id) * W]);
      Informed[static_cast<size_t>(Id)] = Inf;
      NumInformed += Inf;
    }
  } else {
    for (int Id = 0; Id != K; ++Id) {
      if (!Alive[static_cast<size_t>(Id)])
        continue; // Stays uninformed; flag was cleared at death.
      bool Inf = rowContainsSurvivors(&Comm[static_cast<size_t>(Id) * W]);
      Informed[static_cast<size_t>(Id)] = Inf;
      NumInformed += Inf;
    }
  }
}

void ReplicaRunner::applyActions() {
  const SimOptions &O = *Options;
  bool Bordered = O.Bordered;
  bool Gaze = O.Arbitration == ArbitrationMode::GazePriority;

  // Table selection per World::activeGenome: TimeShuffle swaps both slots
  // per step; SpeciesParity splits by ID parity; Single uses A throughout.
  const PackedEntry *TabEven = TableA.data();
  const PackedEntry *TabOdd = TableA.data();
  if (Policy == GenomePolicy::TimeShuffle && (Time % 2)) {
    TabEven = TableB.data();
    TabOdd = TableB.data();
  } else if (Policy == GenomePolicy::SpeciesParity) {
    TabOdd = TableB.data();
  }

  // Pass 1a: observations and move requests under the blocked=0 hypothesis.
  TouchedCells.clear();
  for (int Id = 0; Id != K; ++Id) {
    bool Skipped =
        FaultsActive &&
        (!Alive[static_cast<size_t>(Id)] || Stalled[static_cast<size_t>(Id)]);
    Skip[static_cast<size_t>(Id)] = Skipped;
    if (Skipped)
      continue;
    int C = Cell[static_cast<size_t>(Id)];
    uint8_t Dir = Direction[static_cast<size_t>(Id)];
    int Front = NeighborBase[static_cast<size_t>(C) * Degree + Dir];
    FrontCell[static_cast<size_t>(Id)] = Front;
    int Color = Colors[static_cast<size_t>(C)];
    int FrontColor =
        (Bordered && ((BoundaryMask[static_cast<size_t>(C)] >> Dir) & 1))
            ? 0
            : Colors[static_cast<size_t>(Front)];
    int FreeInput = 2 * (Color + NumColors * FrontColor);
    const PackedEntry *Tab = (Id & 1) ? TabOdd : TabEven;
    bool Requests =
        Tab[static_cast<size_t>(FreeInput * States) +
            ControlState[static_cast<size_t>(Id)]]
            .Move ||
        Gaze;
    if (Requests) {
      int32_t &Claim = ClaimMinId[static_cast<size_t>(Front)];
      if (Claim < 0) {
        Claim = Id;
        TouchedCells.push_back(Front);
      } else {
        Claim = std::min(Claim, Id);
      }
    }
    Input[static_cast<size_t>(Id)] = static_cast<uint8_t>(FreeInput);
  }

  // Pass 1b: arbitration — front cell enterable and no lower-ID claimant.
  for (int Id = 0; Id != K; ++Id) {
    if (Skip[static_cast<size_t>(Id)])
      continue;
    int Front = FrontCell[static_cast<size_t>(Id)];
    int C = Cell[static_cast<size_t>(Id)];
    uint8_t Dir = Direction[static_cast<size_t>(Id)];
    bool FrontOccupied =
        Occupancy[static_cast<size_t>(Front)] >= 0 ||
        ObstacleMask[static_cast<size_t>(Front)] != 0 ||
        (Bordered && ((BoundaryMask[static_cast<size_t>(C)] >> Dir) & 1));
    int32_t Claim = ClaimMinId[static_cast<size_t>(Front)];
    bool LosesConflict = Claim >= 0 && Claim < Id;
    bool Can = !FrontOccupied && !LosesConflict;
    CanMove[static_cast<size_t>(Id)] = Can;
    if (!Can)
      Input[static_cast<size_t>(Id)] |= 1; // blocked bit.
  }
  for (int32_t C : TouchedCells)
    ClaimMinId[static_cast<size_t>(C)] = -1;

  // Pass 2: apply (setcolor, turn, move) simultaneously.
  bool ColorsEnabled = O.ColorsEnabled;
  for (int Id = 0; Id != K; ++Id) {
    if (Skip[static_cast<size_t>(Id)])
      continue;
    const PackedEntry *Tab = (Id & 1) ? TabOdd : TabEven;
    const PackedEntry &E =
        Tab[static_cast<size_t>(Input[static_cast<size_t>(Id)] * States) +
            ControlState[static_cast<size_t>(Id)]];
    int C = Cell[static_cast<size_t>(Id)];
    if (ColorsEnabled)
      Colors[static_cast<size_t>(C)] = E.SetColor;
    ControlState[static_cast<size_t>(Id)] = E.NextState;
    Direction[static_cast<size_t>(Id)] =
        TurnMap[Direction[static_cast<size_t>(Id)]][E.Turn];
    if (E.Move && CanMove[static_cast<size_t>(Id)]) {
      int Front = FrontCell[static_cast<size_t>(Id)];
      assert(Occupancy[static_cast<size_t>(Front)] < 0 &&
             "arbitration let two agents collide");
      Occupancy[static_cast<size_t>(C)] = -1;
      Cell[static_cast<size_t>(Id)] = Front;
      Occupancy[static_cast<size_t>(Front)] = static_cast<int16_t>(Id);
      ++VisitCounts[static_cast<size_t>(Front)];
    }
  }
}

void ReplicaRunner::captureFinalState(ReplicaFinalState &Out) const {
  Out.Colors = Colors;
  Out.Occupancy = Occupancy;
  Out.VisitCounts = VisitCounts;
  Out.Agents.resize(static_cast<size_t>(K));
  for (int Id = 0; Id != K; ++Id) {
    ReplicaAgentState &A = Out.Agents[static_cast<size_t>(Id)];
    A.Cell = Cell[static_cast<size_t>(Id)];
    A.Direction = Direction[static_cast<size_t>(Id)];
    A.ControlState = ControlState[static_cast<size_t>(Id)];
    A.Informed = Informed[static_cast<size_t>(Id)] != 0;
    A.Alive = Alive[static_cast<size_t>(Id)] != 0;
    A.Comm = BitVector(static_cast<size_t>(K));
    const uint64_t *Row = &Comm[static_cast<size_t>(Id) * Words];
    for (int Bit = 0; Bit != K; ++Bit)
      if ((Row[Bit / 64] >> (Bit % 64)) & 1)
        A.Comm.set(static_cast<size_t>(Bit));
  }
}

// Fast-path step machinery, shared between the single-replica loop and the
// lockstep block loop. Preconditions (checked by the dispatchers):
// FaultsActive == false, Bordered == false, Words == 1, no observer.

/// Pick this step's transition tables from the genome policy.
inline void selectTables(FastCtx &C) {
  C.TabEven = C.TabA;
  C.TabOdd = C.TabA;
  if (C.Policy == GenomePolicy::TimeShuffle && (C.Time % 2)) {
    C.TabEven = C.TabB;
    C.TabOdd = C.TabB;
  } else if (C.Policy == GenomePolicy::SpeciesParity) {
    C.TabOdd = C.TabB;
  }
  C.NewInformed = 0;
  C.NumTouched = 0;
}

/// Pass 1 for one agent: exchange, observation, and arbitration fused into
/// one sweep.
///  - Exchange: CellComm holds the pre-step word of every cell (0 when
///    empty), so each agent ORs its neighbour ring with no occupancy
///    branch, and the result goes straight into Comm — no double buffer.
///    Nothing else in pass 1 reads Comm, so the success check can wait
///    until the sweep ends (claims are scratch; on success the step's
///    actions are skipped exactly as the reference engine skips them).
///  - Arbitration: losesConflict only asks whether a LOWER-id requester
///    claims the same cell, and agents run in id order — so when agent Id
///    arrives, every claim that can beat it is already in ClaimMinId and
///    its canmove is final immediately (occupancy is pre-step and
///    untouched here). The claim update uses unconditional stores and min
///    logic so the genome-dependent move output never becomes a
///    mispredicting branch.
///  - The entry for the final (blocked-corrected) input is resolved now —
///    blocked flips only the lowest input bit, i.e. shifts the table row
///    by States — so pass 2 does no table addressing at all.
template <int DegT> inline void pass1Agent(FastCtx &C, int Id) {
  int Cell = C.CellP[Id];
  const int16_t *N = &C.NB[static_cast<size_t>(Cell) * DegT];
  uint64_t W = C.CommW[Id];
  for (int D = 0; D != DegT; ++D)
    W |= C.CellW[N[D]];
  C.CommW[Id] = W;
  C.NewInformed += (W == C.Full);

  int Front = N[C.DirP[Id]];
  C.FrontP[Id] = Front;
  int FreeInput = 2 * (C.ColorsP[Cell] + C.NC * C.ColorsP[Front]);
  const PackedEntry *Row = ((Id & 1) ? C.TabOdd : C.TabEven) +
                           static_cast<size_t>(FreeInput * C.St) +
                           C.StateP[Id];
  bool Req = Row[0].Move || C.Gaze;
  int32_t Claim = C.ClaimP[Front];
  bool FrontOccupied = C.OccP[Front] >= 0 || C.ObstP[Front] != 0;
  bool Can = !FrontOccupied && Claim < 0; // A prior claim is a lower id.
  C.CanMoveP[Id] = Can;
  C.SelP[Id] = Can ? Row[0] : Row[C.St]; // Row[St]: blocked-bit entry.
  bool Fresh = Req && Claim < 0;
  C.ClaimP[Front] = Req ? (Claim < 0 ? Id : Claim) : Claim;
  C.TouchedP[C.NumTouched] = Front;
  C.NumTouched += Fresh;
}

/// End of pass 1: restore the all-minus-one claim invariant and latch
/// success. Time stays at t_comm; the solved step's actions never run.
inline void endPass1(FastCtx &C) {
  for (int J = 0; J != C.NumTouched; ++J)
    C.ClaimP[C.TouchedP[J]] = -1;
  if (C.NewInformed == C.K) {
    C.Done = true;
    C.Success = true;
  }
}

/// Pass 2 for one agent: apply the selected entry, keeping the per-cell
/// comm words in sync. The move is applied with unconditional stores
/// (clear own cell, write the final cell) so the genome-dependent move bit
/// never becomes a branch: a mover's target was empty and uncontested
/// pre-step, so the clears of later agents (all on pre-step-occupied
/// cells) cannot hit an earlier agent's target.
inline void pass2Agent(FastCtx &C, int Id) {
  const PackedEntry En = C.SelP[Id];
  int Cell = C.CellP[Id];
  if (C.ColorsOn)
    C.ColorsP[Cell] = En.SetColor;
  C.StateP[Id] = En.NextState;
  C.DirP[Id] = C.TurnMap[C.DirP[Id]][En.Turn];
  bool Moves = En.Move && C.CanMoveP[Id];
  assert((!Moves || C.OccP[C.FrontP[Id]] < 0) &&
         "arbitration let two agents collide");
  int NewC = Moves ? C.FrontP[Id] : Cell;
  C.OccP[Cell] = -1;
  C.CellW[Cell] = 0;
  C.OccP[NewC] = static_cast<int16_t>(Id);
  C.CellW[NewC] = C.CommW[Id];
  C.VisitP[NewC] += Moves;
  C.CellP[Id] = NewC;
}

/// Single-replica step loop from \p StartStep to the cutoff (also the
/// lockstep straggler path once only one replica is still running).
template <int DegT> void soloSteps(FastCtx &C, int StartStep) {
  for (int I = StartStep, E = C.MaxSteps; I < E; ++I) {
    selectTables(C);
    for (int Id = 0, K = C.K; Id != K; ++Id)
      pass1Agent<DegT>(C, Id);
    endPass1(C);
    if (C.Done)
      return;
    for (int Id = 0, K = C.K; Id != K; ++Id)
      pass2Agent(C, Id);
    ++C.Time;
  }
}

/// Terminal materialisation: per-agent Informed flags (kept lazy during
/// the loop) and the all-zero CellComm invariant for the next replica.
void fastEpilogue(FastCtx &C) {
  if (C.Success) {
    std::fill_n(C.InformedP, C.K, uint8_t(1));
  } else {
    // Cutoff: the flags of the last exchange (the tracked count already
    // matches them; a MaxSteps = 0 run never exchanged and keeps its
    // reset-time flags and count).
    if (C.MaxSteps > 0)
      for (int Id = 0; Id != C.K; ++Id)
        C.InformedP[Id] = C.CommW[Id] == C.Full;
  }
  for (int Id = 0; Id != C.K; ++Id)
    C.CellW[C.CellP[Id]] = 0;
}

FastCtx ReplicaRunner::makeFastCtx() {
  FastCtx C;
  C.NB = Neighbor16Base;
  C.CommW = Comm.data();
  C.CellW = CellComm.data();
  C.CellP = Cell.data();
  C.DirP = Direction.data();
  C.StateP = ControlState.data();
  C.InformedP = Informed.data();
  C.ColorsP = Colors.data();
  C.OccP = Occupancy.data();
  C.VisitP = VisitCounts.data();
  C.ObstP = ObstacleMask.data();
  C.ClaimP = ClaimMinId.data();
  C.FrontP = FrontCell.data();
  C.TouchedP = TouchedCells.data();
  C.CanMoveP = CanMove.data();
  C.SelP = Selected.data();
  C.TabA = TableA.data();
  C.TabB = TableB.data();
  C.TurnMap = &TurnMap[0];
  C.Full = TailMask;
  C.Policy = Policy;
  C.K = K;
  C.St = States;
  C.NC = NumColors;
  C.MaxSteps = Options->MaxSteps;
  C.Gaze = Options->Arbitration == ArbitrationMode::GazePriority;
  C.ColorsOn = Options->ColorsEnabled;
  C.NewInformed = NumInformed; // Preserved verbatim when MaxSteps == 0.
  C.Time = Time;
  // CellComm is all-zero here (zeroed at construction and re-zeroed by
  // every fastEpilogue), so only the occupied cells need writing.
  for (int Id = 0; Id != K; ++Id)
    C.CellW[C.CellP[Id]] = C.CommW[Id];
  return C;
}

template <int DegT> bool ReplicaRunner::runFastSingleWord() {
  FastCtx C = makeFastCtx();
  soloSteps<DegT>(C, 0);
  fastEpilogue(C);
  absorbFastCtx(C);
  return C.Success;
}

SimResult ReplicaRunner::finishReplica(bool Success,
                                       ReplicaFinalState *Final) {
  SimResult Result;
  Result.NumAgents = K;
  Result.Success = Success;
  Result.TComm = Success ? Time : -1;
  Result.InformedAgents = NumInformed;
  Result.SurvivingAgents = NumAlive;
  Result.InformedFraction =
      NumAlive > 0
          ? static_cast<double>(NumInformed) / static_cast<double>(NumAlive)
          : 0.0;
  Result.Faults = Counters;
  if (Final)
    captureFinalState(*Final);
  return Result;
}

SimResult ReplicaRunner::runReplica(
    const BatchReplica &R, int ReplicaIndex,
    const std::function<void(const BatchStepView &)> &OnStep,
    ReplicaFinalState *Final) {
  assert(R.A && R.Placements && R.Options && "incomplete replica spec");
  prepare(R);

  auto Finish = [&](bool Success) { return finishReplica(Success, Final); };

  if (!FaultsActive && !Options->Bordered && Words == 1 && !OnStep &&
      Neighbor16Base)
    return Finish(Degree == 6 ? runFastSingleWord<6>()
                              : runFastSingleWord<4>());

  auto Observe = [&] {
    if (!OnStep)
      return;
    BatchStepView View;
    View.Replica = ReplicaIndex;
    View.Time = Time;
    View.NumAgents = K;
    View.NumCells = NumCells;
    View.WordsPerAgent = Words;
    View.Cells = Cell.data();
    View.Directions = Direction.data();
    View.ControlStates = ControlState.data();
    View.Alive = Alive.data();
    View.Informed = Informed.data();
    View.Comm = Comm.data();
    View.Colors = Colors.data();
    View.Occupancy = Occupancy.data();
    View.NumInformed = NumInformed;
    View.NumSurvivors = NumAlive;
    OnStep(View);
  };

  // < (not !=) so a negative MaxSteps terminates instead of wrapping; the
  // CLI-facing validation lives in World::validatePlacements.
  for (int I = 0; I < Options->MaxSteps; ++I) {
    if (FaultsActive)
      injectFaults();
    exchange();
    bool Solved = NumAlive > 0 && NumInformed == NumAlive;
    Observe();
    if (Solved)
      return Finish(true); // Time stays at t_comm; actions not executed.
    applyActions();
    ++Time;
    if (FaultsActive && NumAlive == 0)
      break; // Extinct: the task can never be solved.
  }
  return Finish(false);
}

} // namespace

std::vector<SimResult>
BatchEngine::run(const std::vector<BatchReplica> &Replicas,
                 const BatchRunOptions &Options) const {
  std::vector<SimResult> Results(Replicas.size());
  if (Replicas.empty())
    return Results;
  if (Options.FinalStates)
    Options.FinalStates->assign(Replicas.size(), ReplicaFinalState());

  auto FinalSlot = [&](size_t I) -> ReplicaFinalState * {
    return Options.FinalStates ? &(*Options.FinalStates)[I] : nullptr;
  };

  // One replica through the runner, honouring the cancellation hooks. A
  // skipped replica keeps its default SimResult (NumAgents == 0).
  auto RunOne = [&](ReplicaRunner &Runner, size_t I,
                    const std::function<void(const BatchStepView &)> &OnStep) {
    int Index = static_cast<int>(I);
    if (Options.ShouldSkip && Options.ShouldSkip(Index))
      return;
    Results[I] = Runner.runReplica(Replicas[I], Index, OnStep, FinalSlot(I));
    if (Options.OnResult)
      Options.OnResult(Index, Results[I]);
  };

  // An observer forces inline sequential execution: callbacks see replicas
  // in order and never run concurrently.
  size_t NumWorkers = Options.OnStep ? 1 : std::max<size_t>(1, Options.NumWorkers);
  NumWorkers = std::min(NumWorkers, Replicas.size());
  if (NumWorkers <= 1) {
    ReplicaRunner Runner(T, BoundaryMask, Neighbors16, TurnMap);
    for (size_t I = 0; I != Replicas.size(); ++I)
      RunOne(Runner, I, Options.OnStep);
    return Results;
  }

  // Chunked fan-out; each chunk gets its own runner (and therefore its own
  // scratch), and every replica still owns its RNG streams, so the chunk
  // geometry cannot change any result.
  size_t ChunkSize = (Replicas.size() + NumWorkers - 1) / NumWorkers;
  size_t NumChunks = (Replicas.size() + ChunkSize - 1) / ChunkSize;
  parallelFor(NumChunks, NumWorkers, [&](size_t Chunk) {
    ReplicaRunner Runner(T, BoundaryMask, Neighbors16, TurnMap);
    size_t Begin = Chunk * ChunkSize;
    size_t End = std::min(Begin + ChunkSize, Replicas.size());
    for (size_t I = Begin; I != End; ++I)
      RunOne(Runner, I, {});
  });
  return Results;
}
