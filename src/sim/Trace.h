//===- sim/Trace.h - Simulation snapshots and trajectories ------*- C++ -*-===//
//
// Part of the ca2a project: reproduction of Hoffmann & Désérable,
// "CA Agents for All-to-All Communication Are Faster in the Triangulate
// Grid" (PaCT 2013).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observation machinery for simulations: raw field snapshots at chosen
/// times (for the Fig. 6/7 panels) and per-agent trajectory recording (the
/// "agents build streets / honeycombs" analysis).
///
//===----------------------------------------------------------------------===//

#ifndef CA2A_SIM_TRACE_H
#define CA2A_SIM_TRACE_H

#include "sim/World.h"

#include <string>
#include <vector>

namespace ca2a {

/// One captured field state.
struct Snapshot {
  int Time = 0;
  std::vector<uint8_t> Colors;      ///< Per-cell colour bit.
  std::vector<int> VisitCounts;     ///< Per-cell entry count.
  std::vector<AgentState> Agents;   ///< Full agent states (comm included).
};

/// Result of runWithSnapshots: the simulation outcome plus the captures.
struct TracedRun {
  SimResult Result;
  std::vector<Snapshot> Snapshots;
};

/// Runs \p W (already reset) to completion, capturing a Snapshot at every
/// time listed in \p Times and always at the final (solved or cut-off)
/// step. Times beyond the run's length are ignored; duplicates are taken
/// once.
TracedRun runWithSnapshots(World &W, std::vector<int> Times);

/// Per-agent sequence of visited cells (flat indices), including the start
/// cell; index 0 is time 0.
using Trajectory = std::vector<int32_t>;

/// Runs \p W (already reset) to completion recording every agent's
/// trajectory.
std::vector<Trajectory> recordTrajectories(World &W, SimResult &ResultOut);

/// Fraction of distinct cells an agent revisited, averaged over agents:
/// 1 - (#distinct cells / trajectory length). High reuse is the "streets"
/// phenomenon of Fig. 6.
double averageRevisitFraction(const std::vector<Trajectory> &Trajectories,
                              int NumCells);

} // namespace ca2a

#endif // CA2A_SIM_TRACE_H
