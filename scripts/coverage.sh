#!/usr/bin/env bash
# Line-coverage report of the full test suite (slow label included).
#
# Builds with gcov instrumentation, runs ctest twice (default set, then
# `-L slow` for the heavy contracts such as the 200-configuration batch
# differential sweep), and captures an lcov report restricted to src/.
# Produces, under build-coverage/:
#   coverage.info         lcov tracefile
#   coverage-html/        browsable per-file report (when genhtml exists)
#   coverage-badge.json   shields.io "endpoint" badge payload
set -euo pipefail
cd "$(dirname "$0")/.."

command -v lcov >/dev/null 2>&1 || {
  echo "error: lcov not installed (apt-get install lcov)" >&2
  exit 1
}

BUILD=build-coverage
GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

cmake -B "$BUILD" "${GENERATOR[@]}" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage -O0 -g"
cmake --build "$BUILD" -j
lcov --zerocounters --directory "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure -j
ctest --test-dir "$BUILD" --output-on-failure -L slow

lcov --capture --directory "$BUILD" --output-file "$BUILD/coverage-all.info" \
  --rc branch_coverage=0 --ignore-errors mismatch,negative,unused 2>/dev/null ||
  lcov --capture --directory "$BUILD" --output-file "$BUILD/coverage-all.info"
# Only the library sources count; tests, benches and system headers don't.
lcov --extract "$BUILD/coverage-all.info" "*/src/*" \
  --output-file "$BUILD/coverage.info"
lcov --list "$BUILD/coverage.info"

# Percentage for the badge: lines hit / lines found over src/.
PCT=$(lcov --summary "$BUILD/coverage.info" 2>&1 |
  sed -n 's/.*lines\.*: *\([0-9.]*\)%.*/\1/p' | head -n1)
PCT=${PCT:-0}
cat >"$BUILD/coverage-badge.json" <<EOF
{"schemaVersion": 1, "label": "coverage", "message": "${PCT}%", "color": "blue"}
EOF
echo "line coverage (src/): ${PCT}%"

if command -v genhtml >/dev/null 2>&1; then
  genhtml "$BUILD/coverage.info" --output-directory "$BUILD/coverage-html" \
    >/dev/null
  echo "html report: $BUILD/coverage-html/index.html"
fi
