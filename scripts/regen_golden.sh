#!/usr/bin/env sh
# Regenerates the golden-trace fixtures in tests/data/golden/ from the
# reference World engine. Run after an INTENDED change to the step
# micro-semantics, then review and commit the fixture diff like any other
# code change (tests/sim/GoldenTraceTest.cpp compares against these
# line-for-line).
#
# Usage: scripts/regen_golden.sh [build-dir]   (default: ./build)
set -eu

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/tests/ca2a_sim_tests"
if [ ! -x "$BIN" ]; then
    echo "error: $BIN not found or not executable — build the tests first" >&2
    echo "       (cmake --build $BUILD_DIR --target ca2a_sim_tests)" >&2
    exit 2
fi

CA2A_REGEN_GOLDEN=1 "$BIN" \
    --gtest_filter='GoldenTraceTest.ReferenceWorldReproducesCommittedTraces'
echo "fixtures rewritten under tests/data/golden/ — review the diff before" \
     "committing"
