#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# table/figure of the paper (EXPERIMENTS.md documents the outputs).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo
echo "=== regenerating all paper artefacts ==="
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo
    echo "===== $(basename "$b") ====="
    "$b"
  fi
done
