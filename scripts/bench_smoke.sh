#!/usr/bin/env bash
#===- scripts/bench_smoke.sh - Non-gating batch-throughput regression ----===#
#
# Part of the ca2a project: reproduction of Hoffmann & Désérable,
# "CA Agents for All-to-All Communication Are Faster in the Triangulate
# Grid" (PaCT 2013).
#
# Runs the quick bench_batch smoke configuration and diffs its
# batch_serial replicas_per_sec against the committed baselines — the
# engine sweep (BENCH_engine.json) and the allocation-free hot path
# (BENCH_hotpath.json). The hotpath comparison doubles as the
# chaos-layer zero-cost check: CA2A_CHAOS=ON builds compile the
# injection sites down to one relaxed atomic load, and this is where a
# regression would show. A slowdown beyond the threshold prints a loud
# WARNING but does NOT fail the script: shared CI runners (and the
# 1-core dev VM) are far too noisy to gate on absolute throughput. What
# does fail the script is bench_batch itself exiting nonzero — that is
# the batch-vs-reference bit-identity check, which is never noise.
#
# Usage: bench_smoke.sh [bench_batch-binary] [baseline-BENCH_engine.json]
#                       [baseline-BENCH_hotpath.json]
#
# The binary defaults to $BUILD_DIR/bench/bench_batch (BUILD_DIR
# defaults to <repo>/build); the baselines default to the committed
# BENCH_engine.json / BENCH_hotpath.json at the repo root.
#
#===----------------------------------------------------------------------===#

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="${1:-${BUILD_DIR:-$ROOT/build}/bench/bench_batch}"
BASELINE="${2:-$ROOT/BENCH_engine.json}"
HOTPATH_BASELINE="${3:-$ROOT/BENCH_hotpath.json}"
THRESHOLD_PCT=20

if [ ! -x "$BENCH" ]; then
  echo "bench_smoke: FAIL — bench_batch binary not found at $BENCH" >&2
  echo "usage: bench_smoke.sh [bench_batch] [engine-baseline.json]" \
       "[hotpath-baseline.json]" >&2
  exit 1
fi
if [ ! -f "$HOTPATH_BASELINE" ]; then
  HOTPATH_BASELINE=""
fi

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

if ! "$BENCH" --quick --json "$WORKDIR/engine.json" \
      --hotpath-json "$WORKDIR/hotpath.json"; then
  echo "bench_smoke: FAIL — bench_batch exited nonzero (identity check)" >&2
  exit 1
fi

# extract <json> <key>: replicas_per_sec of one row in our own fixed
# JSON layout. The key is matched exactly ("batch_serial" must not also
# match the per-backend "batch_serial_scalar" rows).
extract() {
  sed -n "s/.*\"$2\": {.*\"replicas_per_sec\": \([0-9.]*\).*/\1/p" "$1"
}

# compare <label> <current-json> <baseline-json> [key]: report the
# delta, warn (never fail) past the threshold.
compare() {
  local LABEL="$1" KEY="${4:-batch_serial}" CURRENT BASE
  CURRENT="$(extract "$2" "$KEY")"
  BASE="$(extract "$3" "$KEY")"
  if [ -z "$CURRENT" ] || [ -z "$BASE" ]; then
    echo "bench_smoke: WARNING — could not parse $LABEL replicas_per_sec" \
         "(current='$CURRENT' baseline='$BASE'); skipping comparison" >&2
    return 0
  fi
  awk -v cur="$CURRENT" -v base="$BASE" -v thr="$THRESHOLD_PCT" \
      -v label="$LABEL" 'BEGIN {
    delta = 100.0 * (cur - base) / base
    printf "bench_smoke: %s %.1f replicas/s vs baseline %.1f (%+.1f%%)\n",
           label, cur, base, delta
    if (delta < -thr)
      printf "bench_smoke: WARNING — %s throughput regressed more than %d%% vs the committed baseline\n",
             label, thr
  }'
}

compare "engine batch_serial" "$WORKDIR/engine.json" "$BASELINE"
if [ -n "$HOTPATH_BASELINE" ]; then
  compare "hotpath batch_serial" "$WORKDIR/hotpath.json" "$HOTPATH_BASELINE"
  # Per-backend baseline rows: compare every lane kernel present in BOTH
  # files. A backend the runner lacks (avx2 on arm, say) is absent from
  # the fresh run and silently skipped — absence is dispatch working as
  # designed, not a regression.
  for BACKEND in scalar sliced64 avx2 rmaj64; do
    for PREFIX in batch_serial clone_serial clonefault_serial; do
      KEY="${PREFIX}_$BACKEND"
      if [ -n "$(extract "$WORKDIR/hotpath.json" "$KEY")" ] &&
         [ -n "$(extract "$HOTPATH_BASELINE" "$KEY")" ]; then
        compare "hotpath $KEY" "$WORKDIR/hotpath.json" "$HOTPATH_BASELINE"                 "$KEY"
      fi
    done
  done

  # Slab occupancy is deterministic accounting, not timing: the rmaj64
  # clone rows must report the same occupancy as the committed baseline
  # exactly (keyed per row, never pattern-matched across rows). A
  # mismatch means the grouping changed, which is a semantic diff the
  # thresholded throughput comparison above would happily miss.
  extract_occupancy() {
    sed -n "s/.*\"$2\": {.*\"slab_occupancy\": \([0-9.]*\).*/\1/p" "$1"
  }
  for KEY in clone_serial_rmaj64 clonefault_serial_rmaj64; do
    CUR_OCC="$(extract_occupancy "$WORKDIR/hotpath.json" "$KEY")"
    BASE_OCC="$(extract_occupancy "$HOTPATH_BASELINE" "$KEY")"
    if [ -n "$CUR_OCC" ] && [ -n "$BASE_OCC" ]; then
      if [ "$CUR_OCC" = "$BASE_OCC" ]; then
        echo "bench_smoke: $KEY slab_occupancy $CUR_OCC matches baseline"
      else
        echo "bench_smoke: WARNING — $KEY slab_occupancy $CUR_OCC differs" \
             "from baseline $BASE_OCC (slab grouping changed?)" >&2
      fi
    fi
  done
fi
exit 0
