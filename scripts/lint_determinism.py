#!/usr/bin/env python3
"""Determinism lint for the ca2a simulation core.

The repo's central invariant is that every engine produces bit-identical
results for every worker count; Tables 1-2 of the paper are reproduced
*because* each replica's trajectory is a pure function of its seed. This
lint makes the common ways of breaking that invariant a build failure
instead of a review-time hope. It scans ``src/sim``, ``src/ga``,
``src/agent`` and ``src/dist`` (the code that decides simulation and
island-evolution results) for:

  c-rand              rand()/srand(): process-global, unseeded per replica.
  c-time              time(NULL)/clock()/gettimeofday(): wall-clock input.
  random-device       std::random_device: hardware entropy, never replayable.
  std-engine          std:: random engines/distributions: unspecified across
                      platforms; all randomness must flow through ca2a::Rng.
  wall-clock          chrono clock ::now(): wall-clock input (allowed for
                      instrumentation with an explicit pragma, see below).
  unordered-iteration range-for / .begin() iteration over a variable declared
                      std::unordered_*: bucket order is a function of hash
                      seeding and insertion history, so anything accumulated
                      from it is ordering-dependent. Lookups are fine.
  pointer-keyed-order std::map/std::set keyed on a pointer type: iteration
                      order follows allocator addresses, i.e. ASLR.

Findings are suppressed by an explicit, justified pragma on the same or the
preceding line::

    // det-lint: allow(wall-clock) instrumentation only, never feeds results

The pragma names one rule; a bare ``allow()`` matches nothing. Keep the
justification on the line — an unexplained allow is a review blocker.

Hybrid mode: when ``clang-query`` is on PATH (or named via --clang-query)
and a compilation database is available, call-expression rules are also
cross-checked with AST matchers, which sees through macro spellings the
regexes might miss. The regex engine remains authoritative so the lint
works in minimal containers.

Usage:
  lint_determinism.py [--root DIR] [paths...]     lint (default: core dirs)
  lint_determinism.py --self-test                 verify the rule engine
                                                  against the seeded fixture
                                                  negatives in
                                                  tests/lint/fixtures/
Exit status: 0 clean, 1 findings (or self-test expectation failures),
2 usage/environment error.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
# Directories are walked recursively, so "src/sim" covers the SIMD lane
# kernels in src/sim/simd/ too; REQUIRED_COVERAGE pins that — the default
# lint errors out if a path-list edit ever drops them from the scan.
# Entries may be directories (prefix match) or individual files (exact
# match): the rmaj64 slab machinery draws per-replica fault streams in
# plain C++ outside the kernel files, so those translation units are
# pinned by name — a rename or move must update this list consciously.
DEFAULT_PATHS = ["src/sim", "src/ga", "src/agent", "src/dist", "src/support"]
REQUIRED_COVERAGE = [
    os.path.join("src", "dist"),
    os.path.join("src", "sim", "simd"),
    os.path.join("src", "sim", "simd", "ReplicaSlab.cpp"),
    os.path.join("src", "sim", "simd", "KernelRMaj64.cpp"),
    os.path.join("src", "sim", "BatchEngine.cpp"),
    # Chaos draws per-site seeded fault streams and the supervisor owns
    # the retry/watchdog clocks: both must stay under the determinism
    # lint's eye (wall-clock use there needs an explicit pragma).
    os.path.join("src", "support"),
    os.path.join("src", "support", "Chaos.cpp"),
    os.path.join("src", "support", "Supervisor.cpp"),
]
FIXTURE_DIR = os.path.join("tests", "lint", "fixtures")
SOURCE_EXTS = {".cpp", ".h", ".hpp", ".cc", ".hh"}

ALLOW_RE = re.compile(r"det-lint:\s*allow\(([a-z-]+)\)")

# Each rule: (id, human message, compiled regex). Regexes run on
# comment-stripped lines, so doc text can mention rand() freely.
RULES = [
    (
        "c-rand",
        "C rand()/srand() is process-global and unseeded per replica; "
        "draw from a seeded ca2a::Rng instead",
        re.compile(r"(?<![\w.:>])s?rand\s*\("),
    ),
    (
        "c-time",
        "wall-clock input makes runs unreplayable; thread a seed or a "
        "caller-supplied timestamp through instead",
        re.compile(
            r"(?<![\w.>])(?:std::)?time\s*\(\s*(?:NULL|nullptr|0|&)"
            r"|(?<![\w.:>])(?:clock|gettimeofday|clock_gettime|localtime"
            r"|gmtime)\s*\("
        ),
    ),
    (
        "random-device",
        "std::random_device is hardware entropy and never replayable; "
        "seed a ca2a::Rng explicitly",
        re.compile(r"\bstd\s*::\s*random_device\b"),
    ),
    (
        "std-engine",
        "std::<random> engines/distributions have platform-unspecified "
        "streams; all randomness must flow through ca2a::Rng",
        re.compile(
            r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?"
            r"|default_random_engine|ranlux\w*|knuth_b|random_shuffle"
            r"|(?:uniform_int|uniform_real|normal|bernoulli|poisson"
            r"|exponential|discrete)_distribution)\b"
        ),
    ),
    (
        "wall-clock",
        "chrono clock now() is wall-clock input; keep it out of anything "
        "that feeds a result (instrumentation may use an allow pragma)",
        re.compile(
            r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::"
            r"\s*now\b"
        ),
    ),
    (
        "pointer-keyed-order",
        "ordered container keyed on a pointer: iteration order follows "
        "allocator addresses (ASLR); key on a stable id or hash instead",
        re.compile(
            r"\bstd\s*::\s*(?:multi)?(?:map|set)\s*<[^,<>]*\*\s*[,>]"
        ),
    ),
]

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:multi)?(?:map|set)\s*<[^;{}()]*?>\s+"
    r"(\w+)\s*[;={(]"
)
UNORDERED_MSG = (
    "iteration over an unordered container: bucket order depends on hash "
    "seeding and insertion history; iterate a sorted copy or a parallel "
    "vector instead"
)


def strip_comments(text):
    """Blank out // and /* */ comments (and string/char literals), keeping
    line structure so findings carry real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def collect_allows(raw_lines):
    """Map line number -> set of rule ids allowed there. A pragma covers
    its own line and the next (so it can sit above the finding)."""
    allows = {}
    for idx, line in enumerate(raw_lines, start=1):
        for match in ALLOW_RE.finditer(line):
            for covered in (idx, idx + 1):
                allows.setdefault(covered, set()).add(match.group(1))
    return allows


def lint_file(path):
    """Return a list of (path, line, rule, message) findings."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            raw = handle.read()
    except OSError as err:
        print(f"lint_determinism: cannot read {path}: {err}", file=sys.stderr)
        return [(path, 0, "io-error", str(err))]

    raw_lines = raw.splitlines()
    allows = collect_allows(raw_lines)
    code = strip_comments(raw)
    code_lines = code.splitlines()

    findings = []

    def report(lineno, rule, message):
        if rule in allows.get(lineno, ()):  # justified pragma
            return
        findings.append((path, lineno, rule, message))

    for idx, line in enumerate(code_lines, start=1):
        for rule, message, pattern in RULES:
            if pattern.search(line):
                report(idx, rule, message)

    # unordered-iteration: find unordered container variables, then flag
    # iteration over them anywhere in the same file.
    names = set(UNORDERED_DECL_RE.findall(code))
    if names:
        alt = "|".join(re.escape(name) for name in sorted(names))
        iter_res = [
            # for (auto &x : Container) / for (... : this->Container)
            re.compile(
                r"for\s*\([^;()]*:\s*(?:this->)?(?:%s)\s*\)" % alt
            ),
            # Container.begin() / .cbegin() / .rbegin()
            re.compile(r"\b(?:%s)\s*\.\s*c?r?begin\s*\(" % alt),
        ]
        for idx, line in enumerate(code_lines, start=1):
            for pattern in iter_res:
                if pattern.search(line):
                    report(idx, "unordered-iteration", UNORDERED_MSG)

    return findings


def iter_sources(paths, root):
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(full):
            yield full
        elif os.path.isdir(full):
            for dirpath, _dirnames, filenames in os.walk(full):
                for name in sorted(filenames):
                    if os.path.splitext(name)[1] in SOURCE_EXTS:
                        yield os.path.join(dirpath, name)
        else:
            print(f"lint_determinism: no such path: {full}", file=sys.stderr)
            sys.exit(2)


# ---------------------------------------------------------------------------
# clang-query hybrid pass (best effort; regexes stay authoritative).

CLANG_QUERY_MATCHERS = {
    "c-rand": "callExpr(callee(functionDecl(hasAnyName('rand', 'srand'))))",
    "random-device": (
        "varDecl(hasType(cxxRecordDecl(hasName('::std::random_device'))))"
    ),
}


def clang_query_pass(binary, compdb, files):
    """Cross-check AST-visible rules; returns extra findings. Failures of
    the tool itself are reported as warnings, never as lint errors."""
    findings = []
    for rule, matcher in CLANG_QUERY_MATCHERS.items():
        cmd = [binary, "-p", compdb, "-c", f"match {matcher}"] + files
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=600
            )
        except (OSError, subprocess.TimeoutExpired) as err:
            print(f"lint_determinism: clang-query failed: {err}",
                  file=sys.stderr)
            return findings
        for match in re.finditer(
            r"^(/[^\s:]+):(\d+):\d+: note:", proc.stdout, re.M
        ):
            findings.append(
                (match.group(1), int(match.group(2)), rule,
                 f"clang-query: {rule} (see regex rule of the same id)")
            )
    return findings


# ---------------------------------------------------------------------------
# Self test: the seeded negative fixtures must trigger, the clean ones not.

EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z,\- ]+)")


def self_test(root):
    fixture_root = os.path.join(root, FIXTURE_DIR)
    if not os.path.isdir(fixture_root):
        print(f"lint_determinism: fixture dir missing: {fixture_root}",
              file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for name in sorted(os.listdir(fixture_root)):
        if os.path.splitext(name)[1] not in SOURCE_EXTS:
            continue
        path = os.path.join(fixture_root, name)
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
        expect_match = EXPECT_RE.search(first)
        if not expect_match:
            print(f"FAIL {name}: fixture lacks a leading '// expect:' line")
            failures += 1
            continue
        expected = {
            token.strip()
            for token in expect_match.group(1).split(",")
            if token.strip()
        }
        got = {rule for (_f, _l, rule, _m) in lint_file(path)}
        checked += 1
        if expected == {"clean"}:
            if got:
                print(f"FAIL {name}: expected clean, got {sorted(got)}")
                failures += 1
        elif not expected <= got:
            print(
                f"FAIL {name}: expected {sorted(expected)}, "
                f"got {sorted(got) or 'nothing'}"
            )
            failures += 1
    if checked == 0:
        print("lint_determinism: no fixtures found", file=sys.stderr)
        return 2
    if failures:
        print(f"self-test: {failures} of {checked} fixtures FAILED")
        return 1
    print(f"self-test: all {checked} fixtures behaved as expected")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help=f"files/dirs to lint (default: {DEFAULT_PATHS})")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root for relative paths")
    parser.add_argument("--self-test", action="store_true",
                        help="check the rule engine against the seeded "
                             "fixtures and exit")
    parser.add_argument("--clang-query", default="clang-query",
                        help="clang-query binary for the AST cross-check")
    parser.add_argument("--compdb", default=None,
                        help="compilation database dir (enables clang-query "
                             "when the binary exists; default: <root>/build)")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test(args.root))

    paths = args.paths or DEFAULT_PATHS
    files = sorted(set(iter_sources(paths, args.root)))
    if not args.paths:
        for required in REQUIRED_COVERAGE:
            target = os.path.join(args.root, required)
            prefix = target + os.sep
            if not any(f == target or f.startswith(prefix) for f in files):
                print(f"lint_determinism: required path escaped the "
                      f"default scan: {required}", file=sys.stderr)
                sys.exit(2)
    findings = []
    for path in files:
        findings.extend(lint_file(path))

    binary = shutil.which(args.clang_query)
    compdb = args.compdb or os.path.join(args.root, "build")
    if binary and os.path.isfile(os.path.join(compdb, "compile_commands.json")):
        cpp_files = [f for f in files if f.endswith(".cpp")]
        seen = {(f, l, r) for (f, l, r, _m) in findings}
        for extra in clang_query_pass(binary, compdb, cpp_files):
            if (extra[0], extra[1], extra[2]) not in seen:
                findings.append(extra)

    findings.sort()
    for path, line, rule, message in findings:
        rel = os.path.relpath(path, args.root)
        print(f"{rel}:{line}: [{rule}] {message}")
    if findings:
        print(
            f"lint_determinism: {len(findings)} finding(s) in "
            f"{len(files)} files — see the rule list in "
            f"scripts/lint_determinism.py; suppress only with a justified "
            f"'det-lint: allow(<rule>)' pragma"
        )
        sys.exit(1)
    print(f"lint_determinism: {len(files)} files clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
