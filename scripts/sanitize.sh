#!/usr/bin/env bash
# Runs the whole test suite under AddressSanitizer + UndefinedBehaviorSanitizer.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -G Ninja \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -O1 -g"
cmake --build build-asan
ASAN_OPTIONS=detect_leaks=1 ctest --test-dir build-asan --output-on-failure
