#!/usr/bin/env bash
#===- scripts/sanitize.sh - Sanitizer matrix runner ----------------------===#
#
# Part of the ca2a project: reproduction of Hoffmann & Désérable,
# "CA Agents for All-to-All Communication Are Faster in the Triangulate
# Grid" (PaCT 2013).
#
# Builds and runs the test suite under one or more sanitizers. Each mode
# gets its own build directory (build-asan, build-ubsan, build-tsan) and
# its flags come from the repo CMakeLists' -DSANITIZE option, so a manual
# `cmake -DSANITIZE=tsan` reproduces exactly what this script runs.
#
#   asan   AddressSanitizer (+UBSan, the classic combination) + leak check
#   ubsan  UndefinedBehaviorSanitizer alone, nonrecoverable
#   tsan   ThreadSanitizer over the concurrent engine paths; suppressions
#          (if ever needed) live in .tsan-suppressions, justified line by
#          line, and any report fails the run
#
# Usage: sanitize.sh [asan|ubsan|tsan|all]...   (default: asan ubsan)
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

MODES=("$@")
[ ${#MODES[@]} -eq 0 ] && MODES=(asan ubsan)
[ "${MODES[0]}" = "all" ] && MODES=(asan ubsan tsan)

GENERATOR=()
command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)

for MODE in "${MODES[@]}"; do
  case "$MODE" in
  asan | ubsan | tsan) ;;
  *)
    echo "sanitize.sh: unknown mode '$MODE' (expected asan, ubsan, tsan or all)" >&2
    exit 2
    ;;
  esac
  BUILD="build-$MODE"
  echo "== $MODE: configuring $BUILD =="
  cmake -B "$BUILD" "${GENERATOR[@]}" -DSANITIZE="$MODE"
  cmake --build "$BUILD" -j

  echo "== $MODE: running ctest =="
  case "$MODE" in
  asan)
    ASAN_OPTIONS=detect_leaks=1 \
      ctest --test-dir "$BUILD" --output-on-failure -j
    ;;
  ubsan)
    UBSAN_OPTIONS=print_stacktrace=1 \
      ctest --test-dir "$BUILD" --output-on-failure -j
    ;;
  tsan)
    # halt_on_error turns any race report into a test failure; the
    # suppressions file is expected to stay empty (see its header).
    TSAN_OPTIONS="halt_on_error=1 suppressions=$PWD/.tsan-suppressions second_deadlock_stack=1" \
      ctest --test-dir "$BUILD" --output-on-failure -j
    ;;
  esac
done
