#!/usr/bin/env bash
#===- scripts/verify_all.sh - one-stop static verification ---------------===#
#
# Part of the ca2a project: reproduction of Hoffmann & Désérable,
# "CA Agents for All-to-All Communication Are Faster in the Triangulate
# Grid" (PaCT 2013).
#
# Runs every static gate against ONE shared compilation database:
#
#   1. clang-tidy vs its committed baseline        (scripts/tidy.sh)
#   2. determinism lint, self-test then tree scan  (scripts/lint_determinism.py)
#   3. ca2a-verify, self-test + mutation-check,
#      then tree scan vs its empty baseline        (tools/verify/ca2a_verify.py)
#
# Honors BUILD_DIR like bench_smoke.sh/chaos_resume.sh: point it at an
# already-configured build to reuse its compile_commands.json; otherwise a
# configure-only pass creates one in ./build (no compilation needed — the
# analyzers only read the database).
#
# Every stage runs even after a failure so one invocation reports the full
# picture; the exit status is the number of failed stages.
#
#===----------------------------------------------------------------------===#

set -uo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD_DIR:-build}"
if [ ! -f "$BUILD/compile_commands.json" ]; then
  GENERATOR=()
  command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)
  echo "verify_all.sh: configuring $BUILD for compile_commands.json"
  cmake -B "$BUILD" "${GENERATOR[@]}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    >/dev/null
fi

FAILED=0
run_stage() {
  local NAME="$1"
  shift
  echo "==== $NAME ===="
  if "$@"; then
    echo "==== $NAME: OK ===="
  else
    echo "==== $NAME: FAILED ===="
    FAILED=$((FAILED + 1))
  fi
}

run_stage "clang-tidy"            env BUILD_DIR="$BUILD" scripts/tidy.sh
run_stage "det-lint self-test"    python3 scripts/lint_determinism.py --self-test
run_stage "det-lint"              python3 scripts/lint_determinism.py --compdb "$BUILD"
run_stage "ca2a-verify self-test" python3 tools/verify/ca2a_verify.py --self-test
run_stage "ca2a-verify mutations" python3 tools/verify/ca2a_verify.py --mutation-check
run_stage "ca2a-verify"           python3 tools/verify/ca2a_verify.py --compdb "$BUILD"

if [ "$FAILED" -ne 0 ]; then
  echo "verify_all.sh: $FAILED stage(s) FAILED"
  exit "$FAILED"
fi
echo "verify_all.sh: all stages OK"
