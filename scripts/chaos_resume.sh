#!/usr/bin/env bash
#===- scripts/chaos_resume.sh - Kill-resume crash-recovery harness -------===#
#
# Part of the ca2a project: reproduction of Hoffmann & Désérable,
# "CA Agents for All-to-All Communication Are Faster in the Triangulate
# Grid" (PaCT 2013).
#
# The end-to-end crash-recovery contract: an evolve run that is SIGKILLed
# at arbitrary points — while chaos injection is corrupting a quarter of
# its checkpoint writes and failing 2% of its replica evaluations — must,
# after resuming from its checkpoints, produce the exact champion genome
# of an uninterrupted run of the same configuration. Bit-identical, not
# "close": the checkpoint restores the full GA state including the RNG,
# corrupted saves are absorbed by the .bak fallback, and injected replica
# failures are absorbed by bounded retries.
#
# Usage: chaos_resume.sh [evolve-binary] [kills] [generations]
#
# The binary defaults to $BUILD_DIR/examples/evolve (BUILD_DIR defaults
# to <repo>/build), so `BUILD_DIR=build-asan scripts/chaos_resume.sh`
# points the harness at an alternate build tree.
#
# Exits nonzero on any divergence. Prints SKIP and exits 0 when the
# binary was built with CA2A_CHAOS=OFF (nothing to inject).
#
#===----------------------------------------------------------------------===#

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
EVOLVE="${1:-${BUILD_DIR:-$ROOT/build}/examples/evolve}"
KILLS="${2:-3}"
GENERATIONS="${3:-200}"

if [ ! -x "$EVOLVE" ]; then
  echo "chaos_resume: FAIL — evolve binary not found at $EVOLVE" >&2
  echo "usage: chaos_resume.sh [evolve-binary] [kills] [generations]" >&2
  exit 1
fi

# --exact-fitness keeps every generation at full evaluation cost so the
# run is long enough to kill mid-flight; the champion contract is
# engine-independent either way.
CHAOS="seed=5,engine.replica.fail=0.02,ckpt.write.corrupt=0.25"
ARGS=(--no-reliability --grid T --agents 8 --fields 103 --seed 3
      --engine batch --exact-fitness --generations "$GENERATIONS"
      --chaos "$CHAOS")

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

extract_genome() { sed -n 's/^genome: //p' "$1" | tail -n 1; }

# Reference: the same chaotic configuration run to completion in one go,
# without checkpointing.
if ! "$EVOLVE" "${ARGS[@]}" >"$WORKDIR/reference.log" 2>&1; then
  if grep -q "CA2A_CHAOS=ON" "$WORKDIR/reference.log"; then
    echo "chaos_resume: SKIP — this binary was built with CA2A_CHAOS=OFF"
    exit 0
  fi
  echo "chaos_resume: FAIL — reference run exited nonzero" >&2
  cat "$WORKDIR/reference.log" >&2
  exit 1
fi
REFERENCE="$(extract_genome "$WORKDIR/reference.log")"
if [ -z "$REFERENCE" ]; then
  echo "chaos_resume: FAIL — reference run printed no genome line" >&2
  exit 1
fi

# Interrupted runs: start (or resume), pull the plug after a randomized
# delay. $RANDOM is fine here — determinism matters inside the simulator,
# not in when the power fails.
CKPT="$WORKDIR/ckpt"
for K in $(seq 1 "$KILLS"); do
  "$EVOLVE" "${ARGS[@]}" --checkpoint "$CKPT" --resume \
      >"$WORKDIR/kill$K.log" 2>&1 &
  PID=$!
  sleep "0.$((RANDOM % 8 + 1))"
  if kill -KILL "$PID" 2>/dev/null; then
    echo "chaos_resume: kill $K: SIGKILL delivered"
  else
    echo "chaos_resume: kill $K: run finished before the kill (fast host)"
  fi
  wait "$PID" 2>/dev/null
done

# Final resume to completion.
if ! "$EVOLVE" "${ARGS[@]}" --checkpoint "$CKPT" --resume \
    >"$WORKDIR/final.log" 2>&1; then
  echo "chaos_resume: FAIL — final resumed run exited nonzero" >&2
  cat "$WORKDIR/final.log" >&2
  exit 1
fi
RESUMED="$(extract_genome "$WORKDIR/final.log")"

RESUMES="$(grep -h '^resumed ' "$WORKDIR"/kill*.log "$WORKDIR/final.log" \
           2>/dev/null | wc -l)"
RECOVERIES="$(grep -hc 'resumed from backup' "$WORKDIR"/kill*.log \
              "$WORKDIR/final.log" 2>/dev/null | awk '{s+=$1} END {print s}')"
echo "chaos_resume: $RESUMES checkpoint resumes, $RECOVERIES backup" \
     "recoveries across $KILLS kills"
grep '^robustness:' "$WORKDIR/final.log" | sed 's/^/chaos_resume: final /'

if [ "$RESUMED" != "$REFERENCE" ]; then
  echo "chaos_resume: FAIL — resumed champion differs from the" \
       "uninterrupted run" >&2
  echo "  reference: $REFERENCE" >&2
  echo "  resumed:   $RESUMED" >&2
  exit 1
fi
echo "chaos_resume: PASS — champion bit-identical across $KILLS kills"
exit 0
