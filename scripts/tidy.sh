#!/usr/bin/env bash
#===- scripts/tidy.sh - clang-tidy runner with a tracked baseline --------===#
#
# Part of the ca2a project: reproduction of Hoffmann & Désérable,
# "CA Agents for All-to-All Communication Are Faster in the Triangulate
# Grid" (PaCT 2013).
#
# Runs clang-tidy (config: the repo .clang-tidy) over every src/ .cpp
# translation unit against the CMake compilation database and diffs the
# normalised findings against scripts/tidy_baseline.txt. New findings fail
# the script; fixed findings print a reminder to shrink the baseline. The
# committed baseline is empty and should stay that way — it exists so a
# check upgrade that floods the tree can be landed incrementally without
# turning the CI job off.
#
# Usage:
#   tidy.sh                    lint, fail on findings not in the baseline
#   tidy.sh --update-baseline  rewrite the baseline from the current tree
#
# Environment:
#   BUILD_DIR        reuse this configured build's compile_commands.json
#                    (bench_smoke.sh/chaos_resume.sh convention) instead of
#                    configuring a private build-tidy tree.
#   CA2A_TIDY_MAJOR  pin the clang-tidy major version (e.g. 18). When set,
#                    only clang-tidy-<major> (or a matching plain
#                    clang-tidy) is accepted and its absence is a hard
#                    FAILURE, not a skip — CI sets this so baselines can't
#                    drift when the runner image updates.
#
# Containers without clang-tidy (the dev VM bakes only the gcc toolchain)
# get a loud SKIP, not a failure: the gating run is CI's clang-tidy job.
#
#===----------------------------------------------------------------------===#

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/tidy_baseline.txt
UPDATE=0
[ "${1:-}" = "--update-baseline" ] && UPDATE=1

TIDY=""
if [ -n "${CA2A_TIDY_MAJOR:-}" ]; then
  if command -v "clang-tidy-$CA2A_TIDY_MAJOR" >/dev/null 2>&1; then
    TIDY="clang-tidy-$CA2A_TIDY_MAJOR"
  elif command -v clang-tidy >/dev/null 2>&1 &&
    clang-tidy --version | grep -q "version $CA2A_TIDY_MAJOR\."; then
    TIDY=clang-tidy
  else
    echo "tidy.sh: FAIL — CA2A_TIDY_MAJOR=$CA2A_TIDY_MAJOR is pinned but" \
      "clang-tidy-$CA2A_TIDY_MAJOR is not installed (install the pinned" \
      "major; do not fall back to whatever the image ships, the baseline" \
      "is only meaningful against one version)" >&2
    exit 1
  fi
else
  for CANDIDATE in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
    clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$CANDIDATE" >/dev/null 2>&1; then
      TIDY="$CANDIDATE"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "tidy.sh: SKIP — clang-tidy not installed (CI runs the gating job;" \
    "apt-get install clang-tidy to run locally)" >&2
  exit 0
fi

BUILD="${BUILD_DIR:-build-tidy}"
if [ ! -f "$BUILD/compile_commands.json" ]; then
  GENERATOR=()
  command -v ninja >/dev/null 2>&1 && GENERATOR=(-G Ninja)
  cmake -B "$BUILD" "${GENERATOR[@]}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    >/dev/null
fi

# Normalised findings: "file:line:col: warning: ... [check]" with the repo
# prefix stripped, sorted, deduplicated. Notes and compiler warnings from
# headers outside HeaderFilterRegex are dropped.
FINDINGS="$(mktemp)"
trap 'rm -f "$FINDINGS"' EXIT
mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
"$TIDY" -p "$BUILD" --quiet "${SOURCES[@]}" 2>/dev/null |
  grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' |
  sed "s|^$PWD/||" | sort -u >"$FINDINGS" || true

if [ "$UPDATE" = 1 ]; then
  {
    echo "# clang-tidy baseline — findings tolerated while being burned"
    echo "# down. Regenerate with scripts/tidy.sh --update-baseline; only"
    echo "# ever commit a shrinking diff of this file."
    cat "$FINDINGS"
  } >"$BASELINE"
  echo "tidy.sh: baseline updated ($(wc -l <"$FINDINGS") findings)"
  exit 0
fi

KNOWN="$(mktemp)"
trap 'rm -f "$FINDINGS" "$KNOWN"' EXIT
grep -v '^#' "$BASELINE" 2>/dev/null | sort -u >"$KNOWN" || true

NEW=$(comm -23 "$FINDINGS" "$KNOWN")
GONE=$(comm -13 "$FINDINGS" "$KNOWN")
if [ -n "$GONE" ]; then
  echo "tidy.sh: NOTE — baselined findings no longer fire; please shrink"
  echo "$BASELINE:"
  echo "$GONE" | sed 's/^/  - /'
fi
if [ -n "$NEW" ]; then
  echo "tidy.sh: FAIL — new clang-tidy findings (fix, or NOLINT with a"
  echo "reason; do not grow the baseline):"
  echo "$NEW" | sed 's/^/  + /'
  exit 1
fi
echo "tidy.sh: OK — no findings beyond the committed baseline" \
  "($(wc -l <"$KNOWN") baselined)"
