#!/usr/bin/env bash
#===- scripts/islands_resume.sh - SIGKILL-one-island resume harness ------===#
#
# Part of the ca2a project: reproduction of Hoffmann & Désérable,
# "CA Agents for All-to-All Communication Are Faster in the Triangulate
# Grid" (PaCT 2013).
#
# The distributed crash-recovery contract, end to end and across real
# processes: four islands run as four OS processes sharing a FileMailbox
# directory, one island is SIGKILLed mid-run while chaos injection is
# corrupting a quarter of its checkpoint (and migrant-block) writes, the
# victim is restarted and resumes from its durable checkpoint, and the
# aggregated champion must be bit-identical to an uninterrupted
# in-process run of the same (islands, topology, seed) — the surviving
# islands simply wait at their migration barriers until the resumed
# victim replays its round with byte-identical posts.
#
# Usage: islands_resume.sh [islands-binary] [generations]
#
# The binary defaults to $BUILD_DIR/examples/islands (BUILD_DIR defaults
# to <repo>/build). On a CA2A_CHAOS=OFF build the kill/resume check
# still runs, just without write-corruption injection.
#
#===----------------------------------------------------------------------===#

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ISLANDS="${1:-${BUILD_DIR:-$ROOT/build}/examples/islands}"
GENERATIONS="${2:-40}"

if [ ! -x "$ISLANDS" ]; then
  echo "islands_resume: FAIL — islands binary not found at $ISLANDS" >&2
  exit 1
fi

N=4
VICTIM=1
CHAOS="seed=5,ckpt.write.corrupt=0.25"
ARGS=(--islands "$N" --migration-topology ring --migration-interval 3
      --migrants 2 --fields 13 --seed 3 --generations "$GENERATIONS")

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

extract_genome() { sed -n 's/^genome: //p' "$1" | tail -n 1; }

# Probe whether this binary carries the chaos sites; without them the
# harness still exercises SIGKILL + resume, only un-sabotaged.
CHAOS_ARGS=(--chaos "$CHAOS")
if ! "$ISLANDS" --islands 1 --generations 0 --fields 3 --transport socket \
    --chaos "$CHAOS" >"$WORKDIR/probe.log" 2>&1; then
  if grep -q "CA2A_CHAOS=ON" "$WORKDIR/probe.log"; then
    echo "islands_resume: note — CA2A_CHAOS=OFF build, running without" \
         "corruption injection"
    CHAOS_ARGS=()
  else
    echo "islands_resume: FAIL — chaos probe exited nonzero" >&2
    cat "$WORKDIR/probe.log" >&2
    exit 1
  fi
fi

# Reference: the identical configuration, uninterrupted, in one process
# over the socket transport (transport invariance is part of the
# contract under test).
if ! "$ISLANDS" "${ARGS[@]}" --transport socket \
    >"$WORKDIR/reference.log" 2>&1; then
  echo "islands_resume: FAIL — reference run exited nonzero" >&2
  cat "$WORKDIR/reference.log" >&2
  exit 1
fi
REFERENCE="$(extract_genome "$WORKDIR/reference.log")"
if [ -z "$REFERENCE" ]; then
  echo "islands_resume: FAIL — reference run printed no genome line" >&2
  exit 1
fi

# One process per island over the shared mailbox directory.
MAILBOX="$WORKDIR/mailbox"
CKPT="$WORKDIR/ckpt"
mkdir -p "$CKPT"
declare -a PIDS
for I in $(seq 0 $((N - 1))); do
  "$ISLANDS" "${ARGS[@]}" --island "$I" --mailbox "$MAILBOX" \
      --checkpoint "$CKPT" "${CHAOS_ARGS[@]}" \
      >"$WORKDIR/island$I.log" 2>&1 &
  PIDS[I]=$!
done

# Pull the plug on the victim mid-flight. $RANDOM is fine here:
# determinism matters inside the islands, not in when the power fails.
sleep "0.$((RANDOM % 5 + 2))"
if kill -KILL "${PIDS[VICTIM]}" 2>/dev/null; then
  echo "islands_resume: island $VICTIM SIGKILLed"
else
  echo "islands_resume: island $VICTIM finished before the kill (fast host)"
fi
wait "${PIDS[VICTIM]}" 2>/dev/null

# Second incarnation: resumes from the checkpoint, replays its migration
# round idempotently; the blocked neighbours then drain their barriers.
if ! "$ISLANDS" "${ARGS[@]}" --island "$VICTIM" --mailbox "$MAILBOX" \
    --checkpoint "$CKPT" "${CHAOS_ARGS[@]}" \
    >"$WORKDIR/island${VICTIM}_resumed.log" 2>&1; then
  echo "islands_resume: FAIL — resumed island $VICTIM exited nonzero" >&2
  cat "$WORKDIR/island${VICTIM}_resumed.log" >&2
  exit 1
fi
for I in $(seq 0 $((N - 1))); do
  [ "$I" -eq "$VICTIM" ] && continue
  if ! wait "${PIDS[I]}"; then
    echo "islands_resume: FAIL — island $I exited nonzero" >&2
    cat "$WORKDIR/island$I.log" >&2
    exit 1
  fi
done
grep -h 'resumed at generation' "$WORKDIR/island${VICTIM}_resumed.log" \
  | sed 's/^/islands_resume: /'

# Aggregate the posted per-island results and compare champions.
if ! "$ISLANDS" --islands "$N" --seed 3 --aggregate --mailbox "$MAILBOX" \
    >"$WORKDIR/aggregate.log" 2>&1; then
  echo "islands_resume: FAIL — aggregation exited nonzero" >&2
  cat "$WORKDIR/aggregate.log" >&2
  exit 1
fi
AGGREGATED="$(extract_genome "$WORKDIR/aggregate.log")"

if [ "$AGGREGATED" != "$REFERENCE" ]; then
  echo "islands_resume: FAIL — champion differs from the uninterrupted" \
       "in-process run" >&2
  echo "  reference:  $REFERENCE" >&2
  echo "  aggregated: $AGGREGATED" >&2
  exit 1
fi
echo "islands_resume: PASS — champion bit-identical across processes," \
     "SIGKILL and resume"
exit 0
