"""Lexical C++ analysis primitives for ca2a-verify.

This module is the foundation of the authoritative rule engine: a
comment/string stripper that preserves every character offset, a brace
scanner that recovers function extents, and small backward/forward token
helpers. It deliberately stops short of a real parser — the rules built
on top (see verify_rules.py) are designed so that this level of fidelity
is sufficient, and the optional libclang pass (clang_pass.py) cross-checks
the subset of properties that genuinely need a type system.

Everything operates on a single file's text; project-wide state lives in
verify_rules.ProjectIndex.
"""

import re

# Statement terminators/openers that mark a "declaration or statement
# position" on stripped text. '>' covers `template <...>` headers, ':'
# covers access specifiers and labels.
DECL_ANCHOR_CHARS = ";{}>:"

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}

# Words that can never be the return type of a declaration we care about.
NON_TYPE_KEYWORDS = {
    "return", "if", "else", "for", "while", "switch", "case", "default",
    "do", "goto", "break", "continue", "throw", "new", "delete", "sizeof",
    "using", "typedef", "namespace", "class", "struct", "enum", "union",
    "public", "private", "protected", "template", "typename", "operator",
    "co_return", "co_await", "co_yield", "static_assert", "catch", "try",
}


def strip_comments(text):
    """Blank out //, /* */ comments and string/char literals with spaces,
    preserving both line structure and byte offsets (the output has
    exactly the same length as the input)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"':
                # Raw string literal: R"delim( ... )delim"
                close = text.find("(", i + 2)
                if close != -1 and close - (i + 2) <= 16:
                    raw_delim = ")" + text[i + 2 : close] + '"'
                    state = "raw"
                    out.append(" " * (close - i + 1))
                    i = close + 1
                    continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_of_offset(text, offset):
    """1-based line number of a byte offset."""
    return text.count("\n", 0, offset) + 1


def build_line_starts(text):
    starts = [0]
    for idx, ch in enumerate(text):
        if ch == "\n":
            starts.append(idx + 1)
    return starts


def prev_nonspace(code, pos):
    """Index of the last non-whitespace char before pos, or -1."""
    i = pos - 1
    while i >= 0 and code[i].isspace():
        i -= 1
    return i


def next_nonspace(code, pos):
    """Index of the first non-whitespace char at/after pos, or len."""
    i = pos
    n = len(code)
    while i < n and code[i].isspace():
        i += 1
    return i


def match_paren_forward(code, open_pos):
    """Given code[open_pos] == '(', return the index of the matching ')'
    or -1. Works on stripped text (no parens hide in strings)."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def match_paren_backward(code, close_pos):
    """Given code[close_pos] == ')', return the index of the matching '('
    or -1."""
    depth = 0
    for i in range(close_pos, -1, -1):
        c = code[i]
        if c == ")":
            depth += 1
        elif c == "(":
            depth -= 1
            if depth == 0:
                return i
    return -1


def word_before(code, pos):
    """The identifier ending immediately before pos (skipping whitespace),
    or ''. Used to classify `... ( ... ) {` constructs."""
    i = prev_nonspace(code, pos)
    end = i + 1
    while i >= 0 and (code[i].isalnum() or code[i] == "_"):
        i -= 1
    return code[i + 1 : end]


# Qualifiers that may sit between a declarator's ')' and its body '{'.
_TAIL_OK_RE = re.compile(
    r"^(?:\s|const|noexcept|override|final|mutable|volatile|&&?|"
    r"->\s*[\w:<>,&*\s]+|\([^()]*\))*$"
)


class FunctionExtent:
    """One brace-delimited body whose opener looks like a callable: body
    span, whether it is a genuine function (vs an if/for/while/switch/catch
    block), and the start line of its declarator for pragma attachment."""

    __slots__ = ("open_pos", "close_pos", "start_line", "end_line",
                 "is_function", "header_line", "name")

    def __init__(self, open_pos, close_pos, start_line, end_line,
                 is_function, header_line, name):
        self.open_pos = open_pos
        self.close_pos = close_pos
        self.start_line = start_line
        self.end_line = end_line
        self.is_function = is_function
        self.header_line = header_line
        self.name = name

    def contains(self, offset):
        return self.open_pos <= offset <= self.close_pos


def function_extents(code):
    """Scan stripped text for callable-looking brace bodies.

    A '{' opens a callable body when the text before it (after optional
    trailing qualifiers) ends with ')'. The word before the matching '('
    distinguishes real functions/lambdas from control-flow blocks. Returns
    a list of FunctionExtent with is_function=False for control blocks so
    callers can pick reporting granularity while keeping containment
    checks simple.
    """
    extents = []
    stack = []  # open brace positions
    closers = {}
    for i, c in enumerate(code):
        if c == "{":
            stack.append(i)
        elif c == "}":
            if stack:
                closers[stack.pop()] = i
    for open_pos, close_pos in closers.items():
        j = prev_nonspace(code, open_pos)
        if j < 0:
            continue
        # Allow a qualifier tail between ')' and '{' (const, noexcept,
        # trailing return, initialiser list is NOT allowed — ctors with
        # member-init lists end with ')' too via the last initialiser;
        # that still counts as a callable, which is what we want).
        tail_start = code.rfind(")", 0, j + 1)
        if tail_start == -1:
            continue
        tail = code[tail_start + 1 : open_pos]
        if not _TAIL_OK_RE.match(tail):
            continue
        lparen = match_paren_backward(code, tail_start)
        if lparen == -1:
            continue
        # Constructor member-init lists (`Ctor() : A(x), B(y) {`) resolve
        # to the last initialiser's name here; that is fine — the only
        # hard requirement is that control-flow keywords are excluded,
        # and `A`/`B` are not control keywords.
        name = word_before(code, lparen)
        is_function = name not in CONTROL_KEYWORDS
        extents.append(FunctionExtent(
            open_pos, close_pos,
            line_of_offset(code, open_pos),
            line_of_offset(code, close_pos),
            is_function,
            line_of_offset(code, lparen),
            name,
        ))
    extents.sort(key=lambda e: e.open_pos)
    return extents
