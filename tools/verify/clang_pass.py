"""Optional libclang cross-check for ca2a-verify.

The lexical engine in verify_rules.py is authoritative; this pass adds a
type-system-backed second opinion for the two properties regexes can in
principle mis-see through macros or unusual formatting:

  * functions whose canonical return type is Expected<...>/ErrorCode/
    Error but carry no [[nodiscard]] (WarnUnusedResultAttr);
  * member calls on std::atomic<...> specialisations whose argument list
    carries no std::memory_order value (the defaulted-seq_cst hole the
    atomic-ordering rule exists for).

Anything it finds beyond the lexical pass is printed as a WARNING and
never gates a build — in a container without the python clang bindings
(or without a compile_commands.json) the pass degrades to a loud SKIP,
exactly like det-lint's clang-query hybrid and scripts/tidy.sh.

run() returns (ran, warnings): ran is True only when libclang actually
parsed at least one translation unit.
"""

import os

ERROR_TYPE_HEADS = ("Expected<", "ErrorCode", "Error")


def _load_cindex(warnings):
    try:
        from clang import cindex
    except ImportError:
        warnings.append(
            "SKIP: python clang bindings not installed (the lexical "
            "engine remains authoritative; CI installs the pinned "
            "python3-clang for this cross-check)")
        return None
    if not cindex.Config.loaded:
        # Let an explicit override win, then try the sonames the pinned
        # CI toolchain and common distros ship.
        override = os.environ.get("CA2A_LIBCLANG")
        candidates = [override] if override else []
        candidates += [
            "libclang-18.so.18", "libclang-18.so.1", "libclang.so.18",
            "libclang.so.1", "libclang.so",
        ]
        for name in candidates:
            try:
                cindex.Config.set_library_file(name)
                cindex.Index.create()
                return cindex
            except Exception:  # noqa: BLE001 — probe, then move on
                cindex.Config.loaded = False
        warnings.append(
            "SKIP: no loadable libclang shared library (set CA2A_LIBCLANG "
            "to the .so path)")
        return None
    return cindex


def _type_is_error(type_spelling):
    spelling = type_spelling.replace("ca2a::", "")
    return any(spelling.startswith(head) for head in ERROR_TYPE_HEADS)


def _walk(cursor, cindex, src_prefix, hits):
    kinds = cindex.CursorKind
    for node in cursor.walk_preorder():
        loc = node.location
        if loc.file is None or not str(loc.file).startswith(src_prefix):
            continue
        if node.kind in (kinds.FUNCTION_DECL, kinds.CXX_METHOD):
            if _type_is_error(node.result_type.spelling):
                attrs = [c.kind for c in node.get_children()]
                if kinds.WARN_UNUSED_RESULT_ATTR not in attrs:
                    hits.add((str(loc.file), loc.line,
                              "error-discipline",
                              node.spelling))
        elif node.kind == kinds.CXX_MEMBER_CALL_EXPR:
            callee = node.referenced
            if callee is None:
                continue
            parent = callee.semantic_parent
            if parent is None or "atomic" not in parent.spelling:
                continue
            if callee.spelling not in (
                    "load", "store", "exchange", "fetch_add", "fetch_sub",
                    "fetch_and", "fetch_or", "fetch_xor",
                    "compare_exchange_weak", "compare_exchange_strong"):
                continue
            tokens = " ".join(t.spelling for t in node.get_tokens())
            if "memory_order" not in tokens:
                hits.add((str(loc.file), loc.line, "atomic-ordering",
                          callee.spelling))


def run(files, compdb_dir, root):
    """Cross-check `files` against the compilation database in
    `compdb_dir`. Returns (ran, warnings:list[str])."""
    warnings = []
    cindex = _load_cindex(warnings)
    if cindex is None:
        return False, warnings
    compdb_path = os.path.join(compdb_dir, "compile_commands.json")
    if not os.path.isfile(compdb_path):
        warnings.append(
            f"SKIP: no compile_commands.json in {compdb_dir} (configure "
            f"with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON, or point --compdb/"
            f"BUILD_DIR at a configured build)")
        return False, warnings
    try:
        compdb = cindex.CompilationDatabase.fromDirectory(compdb_dir)
    except cindex.CompilationDatabaseError as err:
        warnings.append(f"SKIP: cannot load compilation database: {err}")
        return False, warnings
    index = cindex.Index.create()
    src_prefix = os.path.join(root, "src") + os.sep
    wanted = {f for f in files if f.endswith(".cpp")}
    hits = set()
    parsed = 0
    for path in sorted(wanted):
        commands = compdb.getCompileCommands(path)
        if not commands:
            continue
        cmd = list(commands[0].arguments)
        # Drop the compiler argv[0] and the output/input file operands;
        # keep include paths, defines, and standard flags.
        args = []
        skip_next = False
        for arg in cmd[1:]:
            if skip_next:
                skip_next = False
                continue
            if arg in ("-o", "-c"):
                skip_next = arg == "-o"
                continue
            if arg == path or arg.endswith(os.path.basename(path)):
                continue
            args.append(arg)
        try:
            tu = index.parse(path, args=args)
        except cindex.TranslationUnitLoadError as err:
            warnings.append(f"parse failed for {path}: {err}")
            continue
        parsed += 1
        _walk(tu.cursor, cindex, src_prefix, hits)
    if parsed == 0:
        warnings.append(
            "SKIP: compilation database matched none of the scanned files")
        return False, warnings
    for path, line, rule, detail in sorted(hits):
        rel = os.path.relpath(path, root)
        warnings.append(
            f"WARNING {rel}:{line}: [{rule}] libclang cross-check hit "
            f"'{detail}' — if the lexical scan missed this, file it as a "
            f"rule-engine bug")
    warnings.append(f"cross-checked {parsed} translation unit(s)")
    return True, warnings
