#!/usr/bin/env python3
"""ca2a-verify: AST-level project-invariant analyzer.

Promotes the repo's correctness conventions into machine-checked
invariants, with four rule families (see verify_rules.py):

  error-discipline     [[nodiscard]] on error-carrying returns; no
                       discarded error results at call sites.
  atomic-ordering      explicit std::memory_order on every atomic op,
                       matching the documented BatchRunStats contract
                       (explicit seq_cst needs a justified pragma too).
  chaos-coverage       raw I/O in src/dist, src/ga/Checkpoint*, and
                       src/support must sit inside a registered chaos
                       site (cross-checked against support/Chaos).
  enum-exhaustiveness  switches over ErrorCode/SimdBackend/TopologyKind/
                       TransportKind/ChaosSite list every enumerator and
                       carry no swallowing default:.

The lexical engine is authoritative so the tool works in minimal
containers (exactly the det-lint design); when python libclang bindings
and a compile_commands.json are available, clang_pass.py cross-checks
the type-dependent subset and prints any extra hits as warnings.

Suppression grammar (reason text is mandatory — a bare allow() matches
nothing):

    // verify-lint: allow(<rule>) <reason>
    // verify-lint: chaos-site(<site>) <reason>

Usage:
  ca2a_verify.py [--root DIR] [paths...]   scan (default: src) vs baseline
  ca2a_verify.py --self-test               fixture corpus check
  ca2a_verify.py --mutation-check          seeded-defect single-finding check
  ca2a_verify.py --update-baseline         rewrite tools/verify/baseline.txt

Exit status: 0 clean, 1 findings/self-test/mutation failures, 2 usage or
environment error.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import verify_rules
from verify_rules import (
    DEFAULT_CHECKED_ENUMS,
    FileContext,
    ProjectIndex,
    check_file,
)

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
DEFAULT_PATHS = ["src"]
BASELINE = os.path.join("tools", "verify", "baseline.txt")
FIXTURE_DIR = os.path.join("tests", "lint", "fixtures", "verify")
SOURCE_EXTS = {".cpp", ".h", ".hpp", ".cc", ".hh"}

# Files whose definitions seed the cross-file registries even when a
# partial path list is scanned (self-test and targeted scans included).
REGISTRY_FILES = [
    os.path.join("src", "support", "Error.h"),
    os.path.join("src", "support", "Chaos.h"),
    os.path.join("src", "support", "Chaos.cpp"),
    os.path.join("src", "sim", "Backend.h"),
    os.path.join("src", "ga", "MigrationTopology.h"),
    os.path.join("src", "dist", "Mailbox.h"),
]


def chaos_predicate(root):
    """Paths where the chaos-coverage rule is mandatory."""
    mandatory_dirs = [
        os.path.join(root, "src", "dist") + os.sep,
        os.path.join(root, "src", "support") + os.sep,
    ]
    ckpt_prefix = os.path.join(root, "src", "ga", "Checkpoint")

    def predicate(path):
        return any(path.startswith(d) for d in mandatory_dirs) or \
            path.startswith(ckpt_prefix)
    return predicate


def iter_sources(paths, root):
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(full):
            yield full
        elif os.path.isdir(full):
            for dirpath, _dirnames, filenames in os.walk(full):
                for name in sorted(filenames):
                    if os.path.splitext(name)[1] in SOURCE_EXTS:
                        yield os.path.join(dirpath, name)
        else:
            print(f"ca2a-verify: no such path: {full}", file=sys.stderr)
            sys.exit(2)


def read_text(path, overrides=None):
    if overrides and path in overrides:
        return overrides[path]
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return handle.read()


def build_index(files, root, overrides=None):
    """Two-pass scan: first build the project-wide index (decl categories,
    atomic names, enums, chaos registry), then rules run per file against
    it. Registry files are always indexed so partial scans and fixtures
    see the real ErrorCode/ChaosSite/site-name registries."""
    index = ProjectIndex()
    contexts = []
    indexed = set()
    for rel in REGISTRY_FILES:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            continue
        raw = read_text(path, overrides)
        ctx = FileContext(path, raw)
        index.add_file(ctx)
        if rel.endswith("Chaos.cpp"):
            index.add_site_registry(raw)
        indexed.add(path)
        contexts.append(ctx)
    for path in files:
        if path in indexed:
            continue
        ctx = FileContext(path, read_text(path, overrides))
        index.add_file(ctx)
        if path.replace(os.sep, "/").endswith("support/Chaos.cpp"):
            index.add_site_registry(ctx.raw)
        contexts.append(ctx)
    wanted = set(files)
    return index, [c for c in contexts if c.path in wanted]


def analyze_tree(files, root, overrides=None, all_rules=False):
    index, contexts = build_index(files, root, overrides)
    config = {
        "chaos_predicate": chaos_predicate(root),
        "checked_enums": DEFAULT_CHECKED_ENUMS,
        "all_rules": all_rules,
    }
    findings = []
    for ctx in contexts:
        findings.extend(check_file(ctx, index, config))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def format_finding(finding, root):
    rel = os.path.relpath(finding.path, root)
    return f"{rel}:{finding.line}: [{finding.rule}] {finding.message}"


def normalize(finding, root):
    """Baseline identity: path + rule + message with the line number
    dropped, so unrelated edits above a baselined finding don't churn the
    file (same normalization idea as scripts/tidy.sh)."""
    rel = os.path.relpath(finding.path, root)
    return f"{rel}: [{finding.rule}] {finding.message}"


# ---------------------------------------------------------------------------
# Self test against the fixture corpus.

EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z,\- ]+)")


def self_test(root):
    fixture_root = os.path.join(root, FIXTURE_DIR)
    if not os.path.isdir(fixture_root):
        print(f"ca2a-verify: fixture dir missing: {fixture_root}",
              file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    seen_rules = {"positive": set(), "negative": set()}
    for name in sorted(os.listdir(fixture_root)):
        if os.path.splitext(name)[1] not in SOURCE_EXTS:
            continue
        path = os.path.join(fixture_root, name)
        with open(path, "r", encoding="utf-8") as handle:
            first = handle.readline()
        expect_match = EXPECT_RE.search(first)
        if not expect_match:
            print(f"FAIL {name}: fixture lacks a leading '// expect:' line")
            failures += 1
            continue
        expected = {
            token.strip()
            for token in expect_match.group(1).split(",")
            if token.strip()
        }
        findings = analyze_tree([path], root, all_rules=True)
        got = {f.rule for f in findings}
        checked += 1
        if expected == {"clean"}:
            if got:
                print(f"FAIL {name}: expected clean, got {sorted(got)}")
                for f in findings:
                    print(f"     {format_finding(f, root)}")
                failures += 1
            else:
                # A clean fixture named after a rule is that rule's
                # negative (pragma/correct-code) coverage.
                for rule in verify_rules.RULE_IDS:
                    if rule.replace("-", "_") in name:
                        seen_rules["negative"].add(rule)
        else:
            if expected != got:
                print(f"FAIL {name}: expected {sorted(expected)}, "
                      f"got {sorted(got) or 'nothing'}")
                for f in findings:
                    print(f"     {format_finding(f, root)}")
                failures += 1
            seen_rules["positive"].update(expected)
    if checked == 0:
        print("ca2a-verify: no fixtures found", file=sys.stderr)
        return 2
    for rule in verify_rules.RULE_IDS:
        for kind in ("positive", "negative"):
            if rule not in seen_rules[kind]:
                print(f"FAIL corpus: rule '{rule}' has no {kind} fixture")
                failures += 1
    if failures:
        print(f"self-test: {failures} failure(s) across {checked} fixtures")
        return 1
    print(f"self-test: all {checked} fixtures behaved as expected "
          f"(every rule has positive and negative coverage)")
    return 0


# ---------------------------------------------------------------------------
# Mutation check: seed one defect per rule family, assert exactly one new
# finding of exactly that rule. This is the acceptance gate that proves
# the tree scan's cleanliness is load-bearing.


def _mutate(text, pattern, replacement, description):
    new, count = re.subn(pattern, replacement, text, count=1)
    if count != 1:
        raise RuntimeError(f"mutation site vanished: {description}")
    return new


MUTATIONS = [
    (
        "error-discipline",
        os.path.join("src", "support", "File.h"),
        r"\[\[nodiscard\]\]\s*",
        "",
        "strip the first [[nodiscard]] in support/File.h",
    ),
    (
        "atomic-ordering",
        os.path.join("src", "support", "Chaos.h"),
        r"\.load\(std::memory_order_relaxed\)",
        ".load()",
        "drop the explicit memory_order from the chaos runtime load",
    ),
    (
        "chaos-coverage",
        os.path.join("src", "support", "File.cpp"),
        r"[ \t]*//\s*verify-lint:\s*chaos-site\([^)]*\)[^\n]*\n",
        "",
        "remove the first chaos-site pragma in support/File.cpp",
    ),
    (
        "enum-exhaustiveness",
        os.path.join("src", "support", "Error.cpp"),
        r"[ \t]*case ErrorCode::Cancelled:[^\n]*\n",
        "",
        "remove the ErrorCode::Cancelled case from errorCodeName",
    ),
]


def mutation_check(root, paths):
    files = sorted(set(iter_sources(paths, root)))
    base = analyze_tree(files, root)
    base_keys = {f.key() for f in base}
    failures = 0
    for rule, rel, pattern, replacement, description in MUTATIONS:
        path = os.path.join(root, rel)
        try:
            original = read_text(path)
            mutated = _mutate(original, pattern, replacement, description)
        except (OSError, RuntimeError) as err:
            print(f"FAIL [{rule}] {err}")
            failures += 1
            continue
        findings = analyze_tree(files, root, overrides={path: mutated})
        new = [f for f in findings if f.key() not in base_keys]
        if len(new) == 1 and new[0].rule == rule:
            print(f"PASS [{rule}] {description} -> exactly one finding")
        else:
            print(f"FAIL [{rule}] {description} -> expected exactly one "
                  f"{rule} finding, got {len(new)}:")
            for f in new:
                print(f"     {format_finding(f, root)}")
            failures += 1
    if failures:
        print(f"mutation-check: {failures} of {len(MUTATIONS)} seeded "
              f"defects NOT caught as a single finding")
        return 1
    print(f"mutation-check: all {len(MUTATIONS)} seeded defects caught "
          f"as exactly one finding each")
    return 0


# ---------------------------------------------------------------------------


def load_baseline(root):
    path = os.path.join(root, BASELINE)
    if not os.path.isfile(path):
        return set()
    entries = set()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help=f"files/dirs to scan (default: {DEFAULT_PATHS})")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repo root for relative paths")
    parser.add_argument("--self-test", action="store_true",
                        help="check the rule engine against the fixture "
                             "corpus and exit")
    parser.add_argument("--mutation-check", action="store_true",
                        help="seed one defect per rule family and assert "
                             "each yields exactly one new finding")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite tools/verify/baseline.txt from the "
                             "current scan")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring the baseline")
    parser.add_argument("--compdb", default=None,
                        help="compilation database dir for the libclang "
                             "cross-check (default: $BUILD_DIR or "
                             "<root>/build)")
    parser.add_argument("--require-clang", action="store_true",
                        help="fail (exit 2) if the libclang cross-check "
                             "cannot run — for CI, where the bindings are "
                             "pinned and installed")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test(args.root))
    if args.mutation_check:
        sys.exit(mutation_check(args.root, args.paths or DEFAULT_PATHS))

    paths = args.paths or DEFAULT_PATHS
    files = sorted(set(iter_sources(paths, args.root)))
    findings = analyze_tree(files, args.root)

    # Optional libclang cross-check: extra hits are warnings, never gate —
    # the lexical engine stays authoritative (same contract as det-lint's
    # clang-query pass).
    compdb = args.compdb or os.environ.get("BUILD_DIR") or \
        os.path.join(args.root, "build")
    try:
        import clang_pass
        ran, warnings = clang_pass.run(files, compdb, args.root)
    except Exception as err:  # noqa: BLE001 — the pass must never crash us
        ran, warnings = False, [f"libclang pass crashed: {err}"]
    for message in warnings:
        print(f"ca2a-verify: [clang-pass] {message}", file=sys.stderr)
    if args.require_clang and not ran:
        print("ca2a-verify: --require-clang set but the libclang "
              "cross-check could not run (install the pinned python3-clang "
              "bindings and build compile_commands.json first)",
              file=sys.stderr)
        sys.exit(2)

    if args.update_baseline:
        path = os.path.join(args.root, BASELINE)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                "# ca2a-verify baseline — kept EMPTY by policy.\n"
                "# A finding belongs in the code (fixed) or next to the\n"
                "# code (a justified 'verify-lint: allow(<rule>) <reason>'\n"
                "# pragma), not parked here. Regenerate with\n"
                "#   tools/verify/ca2a_verify.py --update-baseline\n"
                "# and justify any non-empty diff in review.\n")
            for finding in findings:
                handle.write(normalize(finding, args.root) + "\n")
        print(f"ca2a-verify: baseline rewritten with {len(findings)} "
              f"entr{'y' if len(findings) == 1 else 'ies'}")
        sys.exit(0)

    baseline = set() if args.no_baseline else load_baseline(args.root)
    fresh = [f for f in findings if normalize(f, args.root) not in baseline]
    for finding in fresh:
        print(format_finding(finding, args.root))
    if fresh:
        print(f"ca2a-verify: {len(fresh)} finding(s) in {len(files)} "
              f"files — fix them or suppress with a justified "
              f"'verify-lint: allow(<rule>) <reason>' pragma "
              f"(see tools/verify/README.md)")
        sys.exit(1)
    print(f"ca2a-verify: {len(files)} files clean vs baseline "
          f"({len(baseline)} baselined)")
    sys.exit(0)


if __name__ == "__main__":
    main()
