"""Rule engine for ca2a-verify: four AST-level project invariants.

Rules (ids are what pragmas and baselines name):

  error-discipline    Functions returning Expected<T>/ErrorCode/Error must
                      be [[nodiscard]], and no statement may discard such
                      a call's result — a silently swallowed error in a
                      Mailbox or Checkpoint path is exactly how corruption
                      recovery rots.
  atomic-ordering     Every std::atomic load/store/RMW must pass an
                      explicit std::memory_order, and explicit seq_cst is
                      itself a finding (the documented BatchRunStats
                      contract is relaxed cursors/tallies published by the
                      pool join; an undocumented strengthening needs a
                      justified pragma as much as a weakening would).
  chaos-coverage      Raw I/O (::write/::fsync/std::rename/::send/...)
                      in the chaos-mandatory paths must sit in a function
                      covered by a registered chaos site — either a
                      chaosPoint()/chaosCorruptDraw() call in an enclosing
                      function, or a `verify-lint: chaos-site(<site>)`
                      pragma naming the registered site that injects at
                      this primitive's call boundary.
  enum-exhaustiveness Switches whose cases name a checked enum must list
                      every enumerator and must not carry a swallowing
                      `default:`.

Pragma grammar (reason text is mandatory; a bare allow() matches nothing):

  // verify-lint: allow(<rule>) <reason>
  // verify-lint: chaos-site(<registered-site>) <reason>

The engine is purely lexical (see verify_lexical.py) and authoritative;
clang_pass.py adds a best-effort libclang cross-check where available.
"""

import os
import re

from verify_lexical import (
    DECL_ANCHOR_CHARS,
    NON_TYPE_KEYWORDS,
    function_extents,
    line_of_offset,
    match_paren_forward,
    next_nonspace,
    prev_nonspace,
    strip_comments,
    word_before,
)

RULE_IDS = (
    "error-discipline",
    "atomic-ordering",
    "chaos-coverage",
    "enum-exhaustiveness",
)

ALLOW_RE = re.compile(r"verify-lint:\s*allow\(([a-z-]+)\)[ \t]*(\S?)")
CHAOS_SITE_PRAGMA_RE = re.compile(
    r"verify-lint:\s*chaos-site\(([a-z.\-]*)\)[ \t]*(\S?)"
)

SPECIFIER_WORDS = {
    "static", "inline", "constexpr", "consteval", "virtual", "explicit",
    "friend", "extern",
}

# Return types that carry an error the caller must not drop. References
# and pointers to these (accessors) are deliberately out of scope.
ERROR_RETURN_HEADS = {"Expected", "ErrorCode", "Error"}

ATOMIC_MEMBER_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}

# Raw I/O spellings. Qualified (::name / std::name) matches are always
# flagged; the unambiguous subset is also matched bare, so dropping the
# qualifier cannot dodge the rule for names with no common other meaning.
QUALIFIED_IO_NAMES = {
    "open", "openat", "creat", "read", "write", "pread", "pwrite",
    "fsync", "fdatasync", "rename", "renameat", "send", "sendto",
    "sendmsg", "recv", "recvfrom", "recvmsg", "connect", "accept",
    "accept4", "fopen", "fwrite", "fread",
}
BARE_IO_NAMES = {
    "fsync", "fdatasync", "pread", "pwrite", "sendto", "recvfrom",
    "sendmsg", "recvmsg", "accept4", "fopen", "fwrite", "fread",
}

CHAOS_CALL_RE = re.compile(
    r"\b(?:ca2a\s*::\s*)?chaos(?:Point|CorruptDraw)\s*\("
)
CHAOS_SITE_ARG_RE = re.compile(r"ChaosSite\s*::\s*(\w+)")

ENUM_DEF_RE = re.compile(
    r"\benum\s+(?:class|struct)\s+(\w+)\s*(?::\s*[\w:\s]+?)?\{([^}]*)\}",
    re.S,
)
CASE_RE = re.compile(r"\bcase\s+((?:\w+\s*::\s*)*\w+)\s*:")

# Enums whose switches are contract surfaces (ISSUE: the typed error
# taxonomy, the SIMD backend dispatch, the migration topology, and the
# infrastructure fault-kind enum). Widening this list is the intended way
# to grow the rule.
DEFAULT_CHECKED_ENUMS = (
    "ErrorCode",
    "SimdBackend",
    "TopologyKind",
    "TransportKind",
    "ChaosSite",
)


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)


class FileContext:
    """Per-file lexical state shared by all rules."""

    def __init__(self, path, raw):
        self.path = path
        self.raw = raw
        self.raw_lines = raw.splitlines()
        self.code = strip_comments(raw)
        self.code_lines = self.code.splitlines()
        self.allows = self._collect_allows()
        self.site_pragmas = self._collect_site_pragmas()
        self._extents = None

    def _collect_allows(self):
        """line -> set of rule ids allowed there (own + next line). Only
        pragmas that carry a reason suppress anything."""
        allows = {}
        for idx, line in enumerate(self.raw_lines, start=1):
            for match in ALLOW_RE.finditer(line):
                rule, reason_head = match.group(1), match.group(2)
                if not reason_head:
                    continue  # bare allow(rule) with no reason: inert
                for covered in (idx, idx + 1):
                    allows.setdefault(covered, set()).add(rule)
        return allows

    def _collect_site_pragmas(self):
        """List of (line, site_name, has_reason) chaos-site pragmas."""
        pragmas = []
        for idx, line in enumerate(self.raw_lines, start=1):
            for match in CHAOS_SITE_PRAGMA_RE.finditer(line):
                pragmas.append((idx, match.group(1), bool(match.group(2))))
        return pragmas

    def extents(self):
        if self._extents is None:
            self._extents = function_extents(self.code)
        return self._extents

    def allowed(self, line, rule):
        return rule in self.allows.get(line, ())


# ---------------------------------------------------------------------------
# Declaration scanning (shared by error-discipline and the project index).


class Decl:
    __slots__ = ("name", "line", "ret_is_error", "qualified",
                 "has_nodiscard", "decl_start")

    def __init__(self, name, line, ret_is_error, qualified, has_nodiscard,
                 decl_start):
        self.name = name
        self.line = line
        self.ret_is_error = ret_is_error
        self.qualified = qualified
        self.has_nodiscard = has_nodiscard
        # Offset of the declaration's first token (attribute insertion
        # point — identical in raw text, the stripper preserves offsets).
        self.decl_start = decl_start


_IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def _skip_angle(code, pos):
    """code[pos] == '<': return index just past the balanced '>' or -1."""
    depth = 0
    i = pos
    n = len(code)
    while i < n:
        c = code[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1
        i += 1
    return -1


def scan_declarations(code):
    """Find function declarations/definitions at declaration positions.

    Returns a list of Decl. The parse is forward from every declaration
    anchor (start of file, or after one of ;{}>:): optional attributes,
    optional specifier keywords, a return type (identifier chain with an
    optional template argument list, optionally prefixed by const/
    unsigned), pointer/reference declarators, an optional Class::/ns::
    qualifier chain, a name, and a '(' — followed, after the balanced
    parameter list, by something only a declaration can show (';', '{',
    'const', 'noexcept', 'override', '-> ...', '= 0', '= default').
    Reference/pointer returns are skipped (accessor idiom).
    """
    decls = []
    n = len(code)
    anchors = [0]
    for i, c in enumerate(code):
        if c in DECL_ANCHOR_CHARS:
            anchors.append(i + 1)
    for anchor in anchors:
        i = next_nonspace(code, anchor)
        if i >= n:
            continue
        decl_start = i
        has_nodiscard = False
        # Attributes and specifiers may interleave ([[nodiscard]] inline).
        while True:
            if code.startswith("[[", i):
                close = code.find("]]", i)
                if close == -1:
                    break
                if "nodiscard" in code[i:close]:
                    has_nodiscard = True
                i = next_nonspace(code, close + 2)
                continue
            m = _IDENT_RE.match(code, i)
            if m and m.group(0) in SPECIFIER_WORDS:
                i = next_nonspace(code, m.end())
                continue
            break
        m = _IDENT_RE.match(code, i)
        if not m:
            continue
        head = m.group(0)
        if head in NON_TYPE_KEYWORDS:
            continue
        ret_head = head
        is_const_qualified = False
        if head in ("const", "unsigned", "signed"):
            is_const_qualified = head == "const"
            i = next_nonspace(code, m.end())
            m = _IDENT_RE.match(code, i)
            if not m or m.group(0) in NON_TYPE_KEYWORDS:
                continue
            ret_head = m.group(0)
        # Consume the full return-type identifier chain: a::b::c<...>.
        j = m.end()
        saw_template_args = False
        while True:
            k = next_nonspace(code, j)
            if code.startswith("::", k):
                k2 = next_nonspace(code, k + 2)
                m2 = _IDENT_RE.match(code, k2)
                if not m2:
                    break
                ret_head = m2.group(0)
                saw_template_args = False
                j = m2.end()
                continue
            if k < n and code[k] == "<":
                past = _skip_angle(code, k)
                if past == -1:
                    break
                saw_template_args = True
                j = past
                continue
            break
        ret_is_error = ret_head in ERROR_RETURN_HEADS and not is_const_qualified
        if ret_head == "Expected" and not saw_template_args:
            continue  # bare `Expected` is the class name, not a return type
        # Pointer/reference returns: accessors, out of scope.
        k = next_nonspace(code, j)
        if k < n and code[k] in "*&":
            continue
        # Qualifier chain + declarator name.
        qual_parts = 0
        name = None
        name_line_pos = None
        while True:
            m3 = _IDENT_RE.match(code, k)
            if not m3:
                break
            after = next_nonspace(code, m3.end())
            if code.startswith("::", after):
                qual_parts += 1
                k = next_nonspace(code, after + 2)
                continue
            if after < n and code[after] == "(":
                name = m3.group(0)
                name_line_pos = m3.start()
                k = after
                break
            break
        if name is None or name in NON_TYPE_KEYWORDS:
            continue
        close = match_paren_forward(code, k)
        if close == -1:
            continue
        after = next_nonspace(code, close + 1)
        tail_ok = False
        if after < n:
            c = code[after]
            if c in ";{":
                tail_ok = True
            elif c == "=":
                tail_ok = code[after:after + 10].rstrip().startswith(
                    ("= 0", "=0", "= default", "= delete"))
            elif c == "-":
                tail_ok = code.startswith("->", after)
            else:
                m4 = _IDENT_RE.match(code, after)
                tail_ok = bool(m4) and m4.group(0) in (
                    "const", "noexcept", "override", "final", "volatile")
        if not tail_ok:
            continue
        decls.append(Decl(
            name,
            line_of_offset(code, name_line_pos),
            ret_is_error,
            qual_parts > 0,
            has_nodiscard,
            decl_start,
        ))
    return decls


# ---------------------------------------------------------------------------
# Project-wide index.


class ProjectIndex:
    """Cross-file state: error-returning function names (with ambiguity
    tracking), atomic variable names, enum definitions, and the chaos site
    registry."""

    def __init__(self):
        self.decl_cats = {}      # name -> set of "error"/"other"
        self.atomic_names = set()
        self.enums = {}          # enum name -> tuple of enumerators
        self.chaos_enumerators = set()  # ChaosSite::<enumerator> names
        self.chaos_site_names = set()   # spec names: "pool.task", ...

    def add_file(self, ctx):
        for decl in scan_declarations(ctx.code):
            cat = "error" if decl.ret_is_error else "other"
            self.decl_cats.setdefault(decl.name, set()).add(cat)
        for match in ATOMIC_DECL_RE.finditer(ctx.code):
            self.atomic_names.add(match.group("name"))
        for match in ENUM_DEF_RE.finditer(ctx.code):
            name = match.group(1)
            body = match.group(2)
            enumerators = tuple(
                m.group(1)
                for m in re.finditer(
                    r"(?:^|,)\s*([A-Za-z_]\w*)\s*(?:=[^,]*)?", body)
            )
            if enumerators:
                self.enums[name] = enumerators
        if ctx.path.replace(os.sep, "/").endswith("support/Chaos.h"):
            if "ChaosSite" in self.enums:
                self.chaos_enumerators = set(self.enums["ChaosSite"])

    def add_site_registry(self, raw_text):
        """Parse stable site spec names from the chaosSiteName mapping."""
        match = re.search(
            r"chaosSiteName\s*\([^)]*\)\s*\{(.*?)\n\}", raw_text, re.S)
        if not match:
            return
        for lit in re.finditer(r'return\s+"([a-z.\-]+)"', match.group(1)):
            if lit.group(1) != "unknown":
                self.chaos_site_names.add(lit.group(1))

    def error_function_names(self):
        """Names that only ever declare error-carrying returns. A name
        declared with both an error and a non-error return somewhere in
        the scan set is ambiguous at the lexical level and is skipped by
        the call-site check (the libclang pass has no such limit)."""
        return {
            name for name, cats in self.decl_cats.items()
            if cats == {"error"}
        }


ATOMIC_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?atomic\s*<[^;{}()]*>\s*"
    r"(?:\w+\s*::\s*)*(?P<name>\w+)\s*(?:\[[^\]]*\]\s*)?[;{=(]"
)


# ---------------------------------------------------------------------------
# Rule: error-discipline.


def check_error_discipline(ctx, index):
    findings = []
    # (a) declarations: error-carrying return types must be [[nodiscard]].
    for decl in scan_declarations(ctx.code):
        if not decl.ret_is_error or decl.has_nodiscard:
            continue
        if decl.qualified:
            # Out-of-line definition: the attribute lives on the in-class
            # or namespace-scope declaration, which is checked where it
            # is spelled.
            continue
        findings.append(Finding(
            ctx.path, decl.line, "error-discipline",
            f"'{decl.name}' returns an error-carrying type but is not "
            f"[[nodiscard]]; annotate the declaration so no caller can "
            f"silently drop the error"))
    # (b) call sites: no statement may discard an error-carrying result.
    error_names = index.error_function_names()
    if not error_names:
        return findings
    code = ctx.code
    for match in re.finditer(r"\b(\w+)\s*\(", code):
        name = match.group(1)
        if name not in error_names:
            continue
        call_start = _receiver_start(code, match.start())
        if call_start is None:
            continue
        stmt_pos, is_void_cast = _statement_position(code, call_start)
        if not stmt_pos:
            continue
        close = match_paren_forward(code, code.find("(", match.end(1)))
        if close == -1:
            continue
        after = next_nonspace(code, close + 1)
        if after >= len(code) or code[after] != ";":
            continue  # result is used (assigned, compared, chained, ...)
        line = line_of_offset(code, match.start())
        how = ("explicitly discarded with a (void) cast"
               if is_void_cast else "discarded")
        findings.append(Finding(
            ctx.path, line, "error-discipline",
            f"result of '{name}' is {how}; check it, or suppress with a "
            f"justified 'verify-lint: allow(error-discipline)' pragma"))
    return findings


def _receiver_start(code, name_pos):
    """Walk a call's receiver chain (obj. / ptr-> / ns::) back from the
    callee name. Returns the start offset of the full call expression, or
    None when the callee is a member accessed on a call result (already a
    use of that result)."""
    i = name_pos
    while True:
        j = prev_nonspace(code, i)
        if j < 0:
            return i
        if code.startswith("::", j - 1):
            k = j - 2
        elif code[j] == ".":
            k = j - 1
        elif code.startswith("->", j - 1):
            k = j - 2
        else:
            return i
        # The component before the separator must be a plain identifier
        # (receiver variable or namespace); anything else — e.g. a ')'
        # from a chained call — makes this a use, not a discard site.
        end = k + 1
        while k >= 0 and (code[k].isalnum() or code[k] == "_"):
            k -= 1
        if end == k + 1:
            return None
        i = k + 1


def _statement_position(code, pos):
    """Is the expression starting at pos in statement position? Returns
    (bool, is_void_cast). Statement position: after ;{}:, after a
    control-flow header `if (...)`/`for (...)`/..., after else/do, or
    file start. A leading (void) cast is recognised and reported."""
    is_void_cast = False
    j = prev_nonspace(code, pos)
    if j >= 0 and code[j] == ")":
        lparen = code.rfind("(", 0, j)
        if lparen != -1 and code[lparen + 1:j].strip() == "void":
            is_void_cast = True
            j = prev_nonspace(code, lparen)
    if j < 0:
        return True, is_void_cast
    c = code[j]
    if c in ";{}":
        return True, is_void_cast
    if c == ":":
        # Label or access specifier; a member-init list would follow a
        # constructor's ')' — those are initialisations, not discards.
        return word_before(code, j) in ("default", "public", "private",
                                        "protected"), is_void_cast
    if c == ")":
        from verify_lexical import match_paren_backward
        lparen = match_paren_backward(code, j)
        if lparen != -1 and word_before(code, lparen) in (
                "if", "for", "while", "switch"):
            return True, is_void_cast
        return False, is_void_cast
    word_end = j + 1
    k = j
    while k >= 0 and (code[k].isalnum() or code[k] == "_"):
        k -= 1
    return code[k + 1:word_end] in ("else", "do"), is_void_cast


# ---------------------------------------------------------------------------
# Rule: atomic-ordering.


_COMPOUND_OPS = ("+=", "-=", "|=", "&=", "^=")


_EXPR_KEYWORDS = ("return", "co_return", "co_yield", "co_await",
                  "throw", "else", "do", "case")


def check_atomic_ordering(ctx, index):
    findings = []
    code = ctx.code
    names = index.atomic_names
    if not names:
        return findings
    # First pass: shadowing declarations (`bool Name = ...`, a local or
    # parameter reusing an atomic's name) with the brace extent they live
    # in; uses inside that extent after the declaration are the local's.
    shadows = []  # (name, decl_offset, extent)
    extents = ctx.extents()
    matches = [m for m in re.finditer(r"\b(\w+)\b", code)
               if m.group(1) in names]
    for match in matches:
        prev = prev_nonspace(code, match.start())
        is_decl = False
        if prev >= 0 and (code[prev].isalnum() or code[prev] == "_"):
            is_decl = word_before(
                code, match.start()) not in _EXPR_KEYWORDS
        elif prev >= 0 and code[prev] in "*&":
            is_decl = True  # `uint64_t *Next = ...` / `BitVector &Next`
        elif prev >= 0 and code[prev] == ">" and \
                not _closes_atomic_template(code, prev):
            is_decl = True  # `std::vector<int> Next` (not the atomic's own)
        if is_decl:
            containing = [e for e in extents
                          if e.contains(match.start())]
            if containing:
                inner = max(containing, key=lambda e: e.open_pos)
                shadows.append((match.group(1), match.start(), inner))
    for match in matches:
        name = match.group(1)
        prev = prev_nonspace(code, match.start())
        if prev >= 0 and (code[prev] == "." or
                          code.startswith("->", prev - 1)):
            continue  # member of some other object (Stats.Failures, ...)
        if prev >= 0 and code[prev] in ">*&":
            continue  # declaration tail (`atomic<T> Name`) or ptr/ref
        if prev >= 0 and (code[prev].isalnum() or code[prev] == "_"):
            # Preceded by a word: a declaration (`bool Name = ...`)
            # unless the word is a statement keyword introducing an
            # expression (`return Name.load(..)`).
            if word_before(code, match.start()) not in _EXPR_KEYWORDS:
                continue
        if any(sname == name and soff <= match.start() and
               extent.contains(match.start())
               for sname, soff, extent in shadows):
            continue  # use of the shadowing local, not the atomic
        i = next_nonspace(code, match.end())
        # Optional array subscript: FailCursor[Site].fetch_add(...).
        if i < len(code) and code[i] == "[":
            close = code.find("]", i)
            if close == -1:
                continue
            i = next_nonspace(code, close + 1)
        if i >= len(code):
            continue
        line = line_of_offset(code, match.start())
        two = code[i:i + 2]
        if two in ("++", "--"):
            _report(findings, ctx, line, "atomic-ordering",
                    f"'{name}{two}' is a seq_cst RMW in operator "
                    f"clothing; spell it fetch_add/fetch_sub with the "
                    f"memory_order the contract calls for")
            continue
        if two in _COMPOUND_OPS:
            _report(findings, ctx, line, "atomic-ordering",
                    f"'{name} {two}' is a seq_cst RMW; use an explicit "
                    f"fetch_* with a named memory_order")
            continue
        if code[i] == "=" and two != "==":
            _report(findings, ctx, line, "atomic-ordering",
                    f"plain assignment to atomic '{name}' is a seq_cst "
                    f"store; call store() with an explicit memory_order")
            continue
        if code[i] == "." :
            m2 = _IDENT_RE.match(code, next_nonspace(code, i + 1))
            if not m2 or m2.group(0) not in ATOMIC_MEMBER_OPS:
                continue
            lparen = next_nonspace(code, m2.end())
            if lparen >= len(code) or code[lparen] != "(":
                continue
            close = match_paren_forward(code, lparen)
            if close == -1:
                continue
            args = code[lparen:close]
            if "memory_order" not in args:
                _report(findings, ctx, line, "atomic-ordering",
                        f"'{name}.{m2.group(0)}' defaults to seq_cst; "
                        f"pass the explicit memory_order the documented "
                        f"contract assigns this atomic")
            elif "memory_order_seq_cst" in args:
                _report(findings, ctx, line, "atomic-ordering",
                        f"'{name}.{m2.group(0)}' spells seq_cst: the "
                        f"documented contract (BatchRunStats) is relaxed "
                        f"cursors/tallies with pool-join publication — "
                        f"justify the strengthening with an allow pragma "
                        f"or relax it")
    return findings


def _closes_atomic_template(code, gt_pos):
    """True when the '>' at gt_pos closes a std::atomic<...> template
    argument list (i.e. the following identifier is the atomic variable's
    own declaration, not a shadow)."""
    depth = 0
    for i in range(gt_pos, -1, -1):
        c = code[i]
        if c == ">":
            depth += 1
        elif c == "<":
            depth -= 1
            if depth == 0:
                return word_before(code, i) == "atomic"
    return False


def _report(findings, ctx, line, rule, message):
    findings.append(Finding(ctx.path, line, rule, message))


# ---------------------------------------------------------------------------
# Rule: chaos-coverage.


def _io_matches(code):
    for match in re.finditer(r"(?:(std\s*::\s*|::\s*))?\b(\w+)\s*\(", code):
        qualified = match.group(1) is not None
        name = match.group(2)
        if qualified and not match.group(1).startswith("std"):
            # A bare `::` only means the global namespace when no type
            # name precedes it — `SocketMailbox::connect(...)` is a
            # method, but `return ::write(...)` is the syscall.
            before = prev_nonspace(code, match.start(1))
            if before >= 0 and (code[before].isalnum() or
                                code[before] in "_>"):
                if word_before(code, before + 1) not in _EXPR_KEYWORDS:
                    qualified = False
        if qualified and name in QUALIFIED_IO_NAMES:
            yield match.start(2), name
        elif not qualified and name in BARE_IO_NAMES:
            prev = prev_nonspace(code, match.start(2))
            if prev >= 0 and (code[prev] in ".>" or code[prev].isalnum()
                              or code[prev] == "_"):
                continue
            yield match.start(2), name


def check_chaos_coverage(ctx, index):
    findings = []
    code = ctx.code
    extents = [e for e in ctx.extents() if e.is_function]

    # Cross-check every chaos call's site argument against the registry.
    chaos_spans = []
    for match in CHAOS_CALL_RE.finditer(code):
        lparen = code.find("(", match.start())
        close = match_paren_forward(code, lparen)
        if close == -1:
            continue
        chaos_spans.append((match.start(), close))
        arg = CHAOS_SITE_ARG_RE.search(code[lparen:close + 1])
        if arg and index.chaos_enumerators and \
                arg.group(1) not in index.chaos_enumerators:
            line = line_of_offset(code, match.start())
            if not ctx.allowed(line, "chaos-coverage"):
                findings.append(Finding(
                    ctx.path, line, "chaos-coverage",
                    f"chaos call names unregistered site "
                    f"'ChaosSite::{arg.group(1)}'; register it in "
                    f"support/Chaos.h or fix the spelling"))

    # Validate chaos-site pragmas and map them to the extents they cover.
    sited_extents = set()
    for line, site, has_reason in ctx.site_pragmas:
        if not has_reason:
            continue  # a reasonless pragma covers nothing
        if index.chaos_site_names and site not in index.chaos_site_names:
            if not ctx.allowed(line, "chaos-coverage"):
                findings.append(Finding(
                    ctx.path, line, "chaos-coverage",
                    f"chaos-site pragma names unregistered site "
                    f"'{site}' (registry: "
                    f"{', '.join(sorted(index.chaos_site_names))})"))
            continue
        for idx, extent in enumerate(extents):
            if extent.header_line - 3 <= line <= extent.end_line:
                sited_extents.add(idx)

    # Every raw I/O call must be covered by a chaos call in an enclosing
    # function or a chaos-site pragma on one. One finding per function.
    flagged = set()
    for offset, io_name in _io_matches(code):
        containing = [
            (idx, e) for idx, e in enumerate(extents) if e.contains(offset)
        ]
        if not containing:
            continue  # not inside a function (macro text, etc.)
        covered = False
        for idx, extent in containing:
            if idx in sited_extents:
                covered = True
                break
            if any(extent.open_pos <= s <= extent.close_pos
                   for s, _e in chaos_spans):
                covered = True
                break
        if covered:
            continue
        innermost_idx, innermost = max(containing,
                                       key=lambda p: p[1].open_pos)
        line = line_of_offset(code, offset)
        if ctx.allowed(line, "chaos-coverage"):
            continue
        if innermost_idx in flagged:
            continue
        flagged.add(innermost_idx)
        findings.append(Finding(
            ctx.path, line, "chaos-coverage",
            f"raw I/O '{io_name}()' in '{innermost.name}' is outside "
            f"every registered chaos site; add a chaosPoint()/"
            f"chaosCorruptDraw() to the owning operation or declare the "
            f"covering site with 'verify-lint: chaos-site(<site>)'"))
    return findings


# ---------------------------------------------------------------------------
# Rule: enum-exhaustiveness.


def check_enum_exhaustiveness(ctx, index, checked_enums):
    findings = []
    code = ctx.code
    for match in re.finditer(r"\bswitch\s*\(", code):
        lparen = code.find("(", match.start())
        close = match_paren_forward(code, lparen)
        if close == -1:
            continue
        brace = next_nonspace(code, close + 1)
        if brace >= len(code) or code[brace] != "{":
            continue
        # Find the switch body's extent via the precomputed brace pairs.
        body_end = _matching_brace(code, brace)
        if body_end == -1:
            continue
        body = code[brace + 1:body_end]
        # Only top-level labels of THIS switch: mask nested brace bodies.
        top = _mask_nested_braces(body)
        labels = []
        for case in CASE_RE.finditer(top):
            labels.append(case.group(1).replace(" ", ""))
        has_default = re.search(r"\bdefault\s*:", top) is not None
        enum_name = None
        for label in labels:
            if "::" in label:
                qualifier = label.split("::")[-2]
                if qualifier in index.enums:
                    enum_name = qualifier
                    break
        if enum_name is None or enum_name not in checked_enums:
            continue
        line = line_of_offset(code, match.start())
        if ctx.allowed(line, "enum-exhaustiveness"):
            continue
        seen = {label.split("::")[-1] for label in labels}
        missing = [e for e in index.enums[enum_name] if e not in seen]
        if missing:
            findings.append(Finding(
                ctx.path, line, "enum-exhaustiveness",
                f"switch over {enum_name} misses "
                f"{', '.join(enum_name + '::' + m for m in missing)}; "
                f"every enumerator must be handled explicitly"))
        if has_default:
            findings.append(Finding(
                ctx.path, line, "enum-exhaustiveness",
                f"switch over {enum_name} has a swallowing 'default:'; "
                f"drop it so adding an enumerator is a compiler warning "
                f"and a lint finding, not a silent fall-through"))
    return findings


def _matching_brace(code, open_pos):
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _mask_nested_braces(body):
    out = []
    depth = 0
    for c in body:
        if c == "{":
            depth += 1
            out.append(" ")
        elif c == "}":
            depth -= 1
            out.append(" ")
        else:
            out.append(c if depth == 0 else " ")
    return "".join(out)


# ---------------------------------------------------------------------------
# Per-file driver.


def check_file(ctx, index, config):
    """Run every applicable rule on one FileContext. config is a dict:
    chaos_paths (relpath predicate), checked_enums, all_rules (fixture
    mode forces every rule on)."""
    findings = []
    findings.extend(f for f in check_error_discipline(ctx, index)
                    if not ctx.allowed(f.line, f.rule))
    findings.extend(f for f in check_atomic_ordering(ctx, index)
                    if not ctx.allowed(f.line, f.rule))
    if config.get("all_rules") or config["chaos_predicate"](ctx.path):
        findings.extend(check_chaos_coverage(ctx, index))
    findings.extend(check_enum_exhaustiveness(
        ctx, index, config["checked_enums"]))
    return findings
